//! Table 3 — performance gain with three production middleboxes.
//!
//! Paper: CPS gains 4× (LB), 4.4× (NAT), 3× (TR), all reaching ≈1.3 M CPS
//! after Nezha; #vNICs > 40× for all; #concurrent-flow gains 5.04× /
//! 50.4× / 15.3×. Computed from the calibrated capacity models (see
//! `nezha_core::region::middlebox`).

use crate::output::*;
use nezha_core::region::middlebox;
use nezha_core::vm::VmConfig;
use nezha_vswitch::config::VSwitchConfig;

/// Runs the experiment.
pub fn run() {
    banner("Table 3", "Performance gain with three middleboxes");
    let host = VSwitchConfig::middlebox_host();
    // Middlebox datapath VMs sustain ~1.3M CPS once the vSwitch is out of
    // the way (§6.3.1: "all reached around 1.3M").
    let vm = VmConfig {
        vcpus: 64,
        per_core_cps: 90_000.0,
        ..VmConfig::default()
    };
    let rows = middlebox::gains(&host, &vm);

    header(
        &[
            "middlebox",
            "CPS before",
            "CPS after",
            "CPS gain",
            "#vNICs",
            "#flows",
            "paper CPS/#flows",
        ],
        &[14, 11, 10, 9, 8, 8, 18],
    );
    let paper = [("4X", "5.04X"), ("4.4X", "50.4X"), ("3X", "15.3X")];
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    for (r, p) in rows.iter().zip(paper) {
        let mb = [("middlebox", r.name.to_string())];
        reg.set(reg.gauge("table3.cps_gain", &mb), r.cps_gain);
        reg.set(reg.gauge("table3.vnic_gain", &mb), r.vnic_gain);
        reg.set(reg.gauge("table3.flows_gain", &mb), r.flows_gain);
        row(
            &[
                r.name.to_string(),
                eng(r.cps_before),
                eng(r.cps_after),
                gain(r.cps_gain),
                format!(">{:.0}x", r.vnic_gain.min(99.0)),
                gain(r.flows_gain),
                format!("{} / {}", p.0, p.1),
            ],
            &[14, 11, 10, 9, 8, 8, 18],
        );
    }
    println!();
    println!(
        "  LB #flows after: {} (paper: \"roughly 30M flows\")",
        eng(rows[0].flows_after)
    );
    emit_snapshot("table3", &reg.snapshot());
}

//! The experiment runner: regenerates every table and figure of the
//! paper's evaluation from this workspace's models.
//!
//! ```text
//! experiments <id>...      run specific experiments (fig9, table3, ...)
//! experiments all          run everything, in paper order
//! experiments --list       list experiment ids
//! ```

use nezha_bench::experiments;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments <id>... | all | --list");
        eprintln!("ids: {}", experiments::ALL.join(", "));
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        // Tolerate a closed pipe (`experiments --list | head`).
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        for id in experiments::ALL {
            if writeln!(out, "{id}").is_err() {
                break;
            }
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        if !experiments::dispatch(id) {
            eprintln!("unknown experiment: {id} (try --list)");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

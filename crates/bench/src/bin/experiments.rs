//! The experiment runner: regenerates every table and figure of the
//! paper's evaluation from this workspace's models.
//!
//! ```text
//! experiments <id> [--flag=..]...   run one experiment with arguments
//! experiments <id>...               run specific experiments (fig9, ...)
//! experiments all                   run everything, in paper order
//! experiments --list                list experiment ids
//! ```
//!
//! `--flag` arguments apply to the experiment id that precedes them
//! (e.g. `experiments bench --config=testbed --out=bench.json`).

use nezha_bench::experiments::{self, DispatchOutcome};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: experiments <id> [--flag=value]... | all | --list");
        eprintln!("ids: {}", experiments::ALL.join(", "));
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--list") {
        // Tolerate a closed pipe (`experiments --list | head`).
        use std::io::Write;
        let mut out = std::io::stdout().lock();
        for id in experiments::ALL {
            if writeln!(out, "{id}").is_err() {
                break;
            }
        }
        return ExitCode::SUCCESS;
    }
    // Group the command line into (id, flags-that-follow-it) runs.
    let mut jobs: Vec<(String, Vec<String>)> = Vec::new();
    for a in args {
        if a == "all" {
            for id in experiments::ALL {
                jobs.push((id.to_string(), Vec::new()));
            }
        } else if a.starts_with("--") {
            match jobs.last_mut() {
                Some((_, flags)) => flags.push(a),
                None => {
                    eprintln!("argument {a} must follow an experiment id");
                    return ExitCode::from(2);
                }
            }
        } else {
            jobs.push((a, Vec::new()));
        }
    }
    for (id, flags) in &jobs {
        match experiments::dispatch_with(id, flags) {
            DispatchOutcome::Ran(_) => {}
            DispatchOutcome::UnknownId => {
                eprintln!("unknown experiment: {id} (try --list)");
                return ExitCode::FAILURE;
            }
            DispatchOutcome::BadArgs(e) => {
                eprintln!("{e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

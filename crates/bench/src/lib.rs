//! # nezha-bench
//!
//! The experiment harness: one module per table and figure of the paper's
//! evaluation, each regenerating its result from the models in this
//! workspace. The `experiments` binary dispatches to them:
//!
//! ```text
//! cargo run -p nezha-bench --release --bin experiments -- fig9
//! cargo run -p nezha-bench --release --bin experiments -- all
//! ```
//!
//! Absolute numbers come from a simulator, not the authors' testbed; the
//! *shapes* — who wins, by what factor, where the knees sit — are the
//! reproduction targets (see EXPERIMENTS.md for the side-by-side record).
//!
//! Criterion microbenchmarks (`benches/`) cover the genuinely
//! CPU-measurable pieces: the rule-table lookup (Table A1's subject),
//! session-table operations, NSH encode/decode, and the FE-selection hash.

#![warn(missing_docs)]

pub mod experiments;
pub mod output;

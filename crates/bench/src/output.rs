//! Plain-text table/series output helpers shared by every experiment.

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("==============================================================");
    println!("{id} — {title}");
    println!("==============================================================");
}

/// Prints one aligned table row. Cells are already formatted strings.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("  {}", line.join("  "));
}

/// Prints a header row followed by a rule.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
}

/// Formats a count with engineering suffixes (K/M/G).
pub fn eng(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Formats a ratio as `N.NNx`.
pub fn gain(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Renders a small ASCII sparkline of a series (for timeline figures).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_suffixes() {
        assert_eq!(eng(1_300_000.0), "1.30M");
        assert_eq!(eng(2_500.0), "2.5K");
        assert_eq!(eng(12.0), "12.0");
        assert_eq!(eng(3.2e9), "3.20G");
    }

    #[test]
    fn formatting() {
        assert_eq!(gain(3.345), "3.35x");
        assert_eq!(pct(0.5), "50.00%");
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }
}

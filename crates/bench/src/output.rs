//! Plain-text table/series output helpers shared by every experiment,
//! plus the machine-readable JSON snapshot exporter.
//!
//! Every experiment finishes by handing its [`MetricsSnapshot`] to
//! [`emit_snapshot`], which renders one JSON line per snapshot (see
//! EXPERIMENTS.md for the format). By default the line goes nowhere —
//! the human-readable tables stay the primary output — but:
//!
//! * `NEZHA_SNAPSHOT_DIR=<dir>` writes `<dir>/<id>.json`;
//! * `NEZHA_BENCH_JSON=1` prints the line to stdout (the same switch
//!   the Criterion benches use for their JSON lines).

use nezha_sim::metrics::MetricsSnapshot;
use nezha_sim::report::BenchReport;
use std::io::Write;

/// Exports one experiment's typed [`BenchReport`] — the single exit
/// point the dispatcher funnels every experiment through.
///
/// * When the report carries a metrics snapshot, the legacy one-line
///   snapshot export runs unchanged (same bytes, same
///   `NEZHA_SNAPSHOT_DIR` / `NEZHA_BENCH_JSON` switches) — golden
///   fixtures that pin those lines stay valid.
/// * `NEZHA_REPORT_DIR=<dir>` additionally writes the typed report as
///   `<dir>/<id>.report.json` (schema-versioned, timing segregated).
///
/// Write errors are reported on stderr, never fatal.
pub fn emit_report(report: &BenchReport) {
    if let Some(snap) = &report.snapshot {
        emit_snapshot(&report.id, snap);
    }
    if let Ok(dir) = std::env::var("NEZHA_REPORT_DIR") {
        if !dir.is_empty() {
            let path = std::path::Path::new(&dir).join(format!("{}.report.json", report.id));
            if let Err(e) = std::fs::write(&path, report.to_json()) {
                eprintln!("warning: cannot write report {}: {e}", path.display());
            }
        }
    }
}

/// Renders one snapshot as the canonical JSON line:
/// `{"id": "<id>", "metrics": { ... }}`. Deterministic — the metric map
/// is sorted by key and floats print via Rust's shortest-round-trip
/// formatting, so same-seed runs emit byte-identical lines.
pub fn snapshot_line(id: &str, snap: &MetricsSnapshot) -> String {
    format!("{{\"id\": {:?}, \"metrics\": {}}}", id, snap.to_json())
}

/// Exports one experiment's metrics snapshot (see the module docs for
/// the `NEZHA_SNAPSHOT_DIR` / `NEZHA_BENCH_JSON` switches). Errors
/// writing the file are reported on stderr, never fatal.
pub fn emit_snapshot(id: &str, snap: &MetricsSnapshot) {
    let line = snapshot_line(id, snap);
    if let Ok(dir) = std::env::var("NEZHA_SNAPSHOT_DIR") {
        if !dir.is_empty() {
            let path = std::path::Path::new(&dir).join(format!("{id}.json"));
            let write = std::fs::File::create(&path).and_then(|mut f| writeln!(f, "{line}"));
            if let Err(e) = write {
                eprintln!("warning: cannot write snapshot {}: {e}", path.display());
            }
        }
    }
    if std::env::var("NEZHA_BENCH_JSON").is_ok_and(|v| v == "1") {
        println!("{line}");
    }
}

/// Exports the profiler's two artifacts when `NEZHA_PROFILE_DIR=<dir>`
/// is set: `<dir>/<id>.folded` (collapsed-stack flamegraph input, one
/// `frame;frame;... cycles` line per call path) and `<dir>/<id>.trace.json`
/// (Chrome `trace_event` JSON for `chrome://tracing` / Perfetto). Both
/// render SimTime only, so same-seed runs write byte-identical files.
/// Write errors are reported on stderr, never fatal.
pub fn emit_profile(id: &str, prof: &nezha_sim::profile::Profiler) {
    let Ok(dir) = std::env::var("NEZHA_PROFILE_DIR") else {
        return;
    };
    if dir.is_empty() {
        return;
    }
    for (name, content) in [
        (format!("{id}.folded"), prof.flamegraph()),
        (format!("{id}.trace.json"), prof.chrome_trace()),
    ] {
        let path = std::path::Path::new(&dir).join(name);
        if let Err(e) = std::fs::write(&path, content) {
            eprintln!(
                "warning: cannot write profile artifact {}: {e}",
                path.display()
            );
        }
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!();
    println!("==============================================================");
    println!("{id} — {title}");
    println!("==============================================================");
}

/// Prints one aligned table row. Cells are already formatted strings.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = *w))
        .collect();
    println!("  {}", line.join("  "));
}

/// Prints a header row followed by a rule.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(
        &cells.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        widths,
    );
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    println!("  {}", "-".repeat(total));
}

/// Formats a count with engineering suffixes (K/M/G).
pub fn eng(v: f64) -> String {
    let a = v.abs();
    if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.1}K", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Formats a ratio as `N.NNx`.
pub fn gain(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

/// Renders a small ASCII sparkline of a series (for timeline figures).
pub fn sparkline(values: &[f64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().fold(f64::MIN, f64::max);
    let min = values.iter().copied().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| GLYPHS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eng_suffixes() {
        assert_eq!(eng(1_300_000.0), "1.30M");
        assert_eq!(eng(2_500.0), "2.5K");
        assert_eq!(eng(12.0), "12.0");
        assert_eq!(eng(3.2e9), "3.20G");
    }

    #[test]
    fn formatting() {
        assert_eq!(gain(3.345), "3.35x");
        assert_eq!(pct(0.5), "50.00%");
    }

    #[test]
    fn snapshot_line_is_deterministic_json() {
        let reg = nezha_sim::metrics::MetricsRegistry::new();
        let h = reg.counter("pkt.ok", &[]);
        reg.add(h, 3);
        let a = snapshot_line("figX", &reg.snapshot());
        let b = snapshot_line("figX", &reg.snapshot());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"id\": \"figX\", \"metrics\": {"));
        assert!(a.contains("\"pkt.ok\""));
    }

    #[test]
    fn sparkline_spans_range() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁'));
        assert!(s.ends_with('█'));
    }
}

//! Microbenchmark of the real slow-path rule lookup — the subject of the
//! paper's Table A1. Sweeps #ACL rules; the paper's degradation with rule
//! count (6.6 -> 5.4 Mpps) should appear as growing per-lookup time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nezha_types::{Direction, FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::pipeline::slow_path_lookup;
use nezha_vswitch::vnic::{Vnic, VnicProfile};
use std::hint::black_box;

fn bench_rule_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_lookup");
    // One compiled lookup graph serves every sweep point — graphs are
    // built once at vSwitch construction in the real datapath too.
    let graph = nezha_vswitch::stage::lookup::lookup_graph();
    for rules in [0usize, 8, 64, 100, 1000] {
        let vnic = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile {
                acl_rules: rules,
                ..VnicProfile::default()
            },
            ServerId(0),
        );
        let graph = &graph;
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, _| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                let tuple = FiveTuple::tcp(
                    Ipv4Addr::new(10, 7, 1, (i % 200) as u8 + 1),
                    (i % 50_000) as u16 + 1024,
                    Ipv4Addr::new(10, 7, 0, 1),
                    9000,
                );
                black_box(slow_path_lookup(graph, &vnic, &tuple, Direction::Rx))
            });
        });
    }
    group.finish();
}

/// Exports the cost model's cycles for the same sweep, so the measured
/// degradation can be compared against the simulated card's (Table A1).
fn emit_model_snapshot(c: &mut Criterion) {
    let _ = c;
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    let cfg = nezha_vswitch::config::VSwitchConfig::default();
    for rules in [0usize, 8, 64, 100, 1000] {
        reg.set(
            reg.gauge("bench.lookup_model_cycles", &[("rules", rules.to_string())]),
            cfg.costs.lookup_cycles(64, rules, 0) as f64,
        );
    }
    nezha_bench::output::emit_snapshot("bench_rule_lookup", &reg.snapshot());
}

criterion_group!(benches, bench_rule_lookup, emit_model_snapshot);
criterion_main!(benches);

//! Microbenchmark of the real slow-path rule lookup — the subject of the
//! paper's Table A1. Sweeps #ACL rules; the paper's degradation with rule
//! count (6.6 -> 5.4 Mpps) should appear as growing per-lookup time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nezha_types::{Direction, FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::pipeline::slow_path_lookup;
use nezha_vswitch::vnic::{Vnic, VnicProfile};
use std::hint::black_box;

fn bench_rule_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("rule_lookup");
    for rules in [0usize, 8, 64, 100, 1000] {
        let vnic = Vnic::new(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            VnicProfile {
                acl_rules: rules,
                ..VnicProfile::default()
            },
            ServerId(0),
        );
        group.bench_with_input(BenchmarkId::from_parameter(rules), &rules, |b, _| {
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                let tuple = FiveTuple::tcp(
                    Ipv4Addr::new(10, 7, 1, (i % 200) as u8 + 1),
                    (i % 50_000) as u16 + 1024,
                    Ipv4Addr::new(10, 7, 0, 1),
                    9000,
                );
                black_box(slow_path_lookup(&vnic, &tuple, Direction::Rx))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rule_lookup);
criterion_main!(benches);

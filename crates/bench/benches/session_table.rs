//! Microbenchmark of session-table operations: establish (the slow-path
//! insert), fast-path lookup+touch, and the aging sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use nezha_sim::resources::MemoryPool;
use nezha_sim::time::SimTime;
use nezha_types::{Direction, FiveTuple, Ipv4Addr, PreActionPair, SessionKey, VnicId, VpcId};
use nezha_vswitch::config::VSwitchConfig;
use nezha_vswitch::session::SessionTable;
use std::hint::black_box;

fn key(i: u32) -> SessionKey {
    SessionKey::of(
        VpcId(1),
        FiveTuple::tcp(
            Ipv4Addr(0x0a070000 | (i & 0xffff)),
            (i % 50_000) as u16 + 1024,
            Ipv4Addr::new(10, 7, 0, 1),
            9000,
        ),
    )
}

fn bench_session_table(c: &mut Criterion) {
    let cfg = VSwitchConfig::default();

    c.bench_function("session_establish", |b| {
        let mut table = SessionTable::new();
        let mut pool = MemoryPool::new(1 << 30);
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(
                table
                    .establish(
                        key(i),
                        VnicId(1),
                        Direction::Rx,
                        Some(PreActionPair::accept(None, None)),
                        SimTime(i as u64),
                        &mut pool,
                        &cfg.memory,
                    )
                    .is_ok(),
            )
        });
    });

    c.bench_function("session_fast_lookup", |b| {
        let mut table = SessionTable::new();
        let mut pool = MemoryPool::new(1 << 30);
        for i in 0..100_000u32 {
            table
                .establish(
                    key(i),
                    VnicId(1),
                    Direction::Rx,
                    Some(PreActionPair::accept(None, None)),
                    SimTime(0),
                    &mut pool,
                    &cfg.memory,
                )
                .unwrap();
        }
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(table.get(&key(i % 100_000)).is_some())
        });
    });

    c.bench_function("session_aging_sweep_100k", |b| {
        b.iter_with_setup(
            || {
                let mut table = SessionTable::new();
                let mut pool = MemoryPool::new(1 << 30);
                for i in 0..100_000u32 {
                    table
                        .establish(
                            key(i),
                            VnicId(1),
                            Direction::Rx,
                            None,
                            SimTime(0),
                            &mut pool,
                            &cfg.memory,
                        )
                        .unwrap();
                }
                (table, pool)
            },
            |(mut table, mut pool)| {
                black_box(table.expire(SimTime(10_000_000_000), &cfg, &mut pool))
            },
        );
    });
}

/// Exports the table census behind the timing numbers: sessions held and
/// then expired by a full aging sweep over a 100K-entry table.
fn emit_table_snapshot(c: &mut Criterion) {
    let _ = c;
    let cfg = VSwitchConfig::default();
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    let mut table = SessionTable::new();
    let mut pool = MemoryPool::new(1 << 30);
    for i in 0..100_000u32 {
        table
            .establish(
                key(i),
                VnicId(1),
                Direction::Rx,
                None,
                SimTime(0),
                &mut pool,
                &cfg.memory,
            )
            .unwrap();
    }
    reg.add(
        reg.counter("bench.sessions_established", &[]),
        table.len() as u64,
    );
    let expired = table.expire(SimTime(10_000_000_000), &cfg, &mut pool);
    reg.add(reg.counter("bench.sessions_expired", &[]), expired as u64);
    nezha_bench::output::emit_snapshot("bench_session_table", &reg.snapshot());
}

criterion_group!(benches, bench_session_table, emit_table_snapshot);
criterion_main!(benches);

//! Microbenchmark of Nezha's load-balancing primitive: the stable 5-tuple
//! hash and the FE selection it drives (paper §3.2.3 — "only 5-tuple
//! hashing, without ... symmetric or consistent hashing").

use criterion::{criterion_group, criterion_main, Criterion};
use nezha_core::be::BackendMeta;
use nezha_sim::time::SimTime;
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, SessionKey, VpcId};
use std::hint::black_box;

fn bench_hash_lb(c: &mut Criterion) {
    c.bench_function("five_tuple_stable_hash", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let t = FiveTuple::tcp(
                Ipv4Addr(0x0a070000 | i),
                (i % 50_000) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            );
            black_box(t.stable_hash())
        });
    });

    c.bench_function("fe_select_4", |b| {
        let mut meta = BackendMeta::new(SimTime(0));
        for s in 1..=4 {
            meta.add_fe(ServerId(s));
            meta.mark_ready(ServerId(s));
        }
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let t = FiveTuple::tcp(
                Ipv4Addr(0x0a070000 | i),
                (i % 50_000) as u16,
                Ipv4Addr::new(10, 7, 0, 1),
                9000,
            );
            let key = SessionKey::of(VpcId(1), t);
            black_box(meta.select_fe(&key, t.canonical().stable_hash()))
        });
    });
}

/// Exports the hash-quality census behind the timing numbers: how evenly
/// the stable hash spreads 100K tuples over a 4-FE pool.
fn emit_balance_snapshot(c: &mut Criterion) {
    let _ = c;
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    let mut meta = BackendMeta::new(SimTime(0));
    for s in 1..=4 {
        meta.add_fe(ServerId(s));
        meta.mark_ready(ServerId(s));
    }
    for i in 0..100_000u32 {
        let t = FiveTuple::tcp(
            Ipv4Addr(0x0a070000 | i),
            (i % 50_000) as u16,
            Ipv4Addr::new(10, 7, 0, 1),
            9000,
        );
        let key = SessionKey::of(VpcId(1), t);
        if let Some(fe) = meta.select_fe(&key, t.canonical().stable_hash()) {
            let h = reg.counter("bench.fe_selected", &[("fe", fe.raw().to_string())]);
            reg.inc(h);
        }
    }
    nezha_bench::output::emit_snapshot("bench_hash_lb", &reg.snapshot());
}

criterion_group!(benches, bench_hash_lb, emit_balance_snapshot);
criterion_main!(benches);

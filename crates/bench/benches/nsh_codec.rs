//! Microbenchmark of the Nezha service header codec — the per-packet
//! encapsulation cost of carrying state/pre-actions between BE and FE.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion};
use nezha_types::{
    Direction, Ipv4Addr, NezhaHeader, NezhaPayloadKind, NshView, PreAction, PreActionPair,
    ServerId, VnicId, VpcId,
};
use std::hint::black_box;

fn full_header() -> NezhaHeader {
    let mut h = NezhaHeader::bare(NezhaPayloadKind::RxCarry, VnicId(42), VpcId(7));
    h.first_dir = Some(Direction::Tx);
    h.decap_addr = Some(Ipv4Addr::new(100, 64, 3, 4));
    h.stats_policy = Some(5);
    h.pre_actions = Some(PreActionPair {
        tx: PreAction::accept(Some(ServerId(12))),
        rx: PreAction::drop(),
    });
    h
}

fn bench_nsh(c: &mut Criterion) {
    let h = full_header();

    c.bench_function("nsh_encode_full", |b| {
        let mut buf = BytesMut::with_capacity(64);
        b.iter(|| {
            buf.clear();
            h.encode(&mut buf);
            black_box(buf.len())
        });
    });

    let mut wire = BytesMut::new();
    h.encode(&mut wire);
    c.bench_function("nsh_decode_full", |b| {
        b.iter(|| black_box(NezhaHeader::decode(&wire).unwrap()))
    });

    let bare = NezhaHeader::bare(NezhaPayloadKind::TxCarry, VnicId(1), VpcId(1));
    c.bench_function("nsh_encode_bare", |b| {
        let mut buf = BytesMut::with_capacity(16);
        b.iter(|| {
            buf.clear();
            bare.encode(&mut buf);
            black_box(buf.len())
        });
    });

    // Zero-copy twins: same header, no allocation / no owned materialization.
    // The deltas against the pairs above are the point of this bench.
    c.bench_function("nsh_encode_into_full", |b| {
        let mut arr = [0u8; NezhaHeader::MAX_WIRE_LEN];
        b.iter(|| black_box(h.encode_into(&mut arr)));
    });

    c.bench_function("nsh_view_demux_full", |b| {
        // The FE/BE demux path: validate once, read kind + vnic + vpc,
        // never decode the 32-byte pre-action block.
        b.iter(|| {
            let v = NshView::parse(&wire).unwrap();
            black_box((v.kind(), v.vnic(), v.vpc()))
        })
    });

    c.bench_function("nsh_view_to_owned_full", |b| {
        b.iter(|| black_box(NshView::parse(&wire).unwrap().to_owned()))
    });
}

/// Exports the wire sizes behind the timing numbers (the per-packet
/// overhead the NSH carry path adds).
fn emit_size_snapshot(c: &mut Criterion) {
    let _ = c;
    let reg = nezha_sim::metrics::MetricsRegistry::new();
    let mut buf = BytesMut::new();
    full_header().encode(&mut buf);
    reg.add(reg.counter("bench.nsh_full_bytes", &[]), buf.len() as u64);
    buf.clear();
    NezhaHeader::bare(NezhaPayloadKind::TxCarry, VnicId(1), VpcId(1)).encode(&mut buf);
    reg.add(reg.counter("bench.nsh_bare_bytes", &[]), buf.len() as u64);
    nezha_bench::output::emit_snapshot("bench_nsh_codec", &reg.snapshot());
}

criterion_group!(benches, bench_nsh, emit_size_snapshot);
criterion_main!(benches);

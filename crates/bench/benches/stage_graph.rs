//! Microbenchmark of the stage-graph machinery itself: what the
//! combinator indirection costs per packet, beyond the table work the
//! stages do. Three measurements bound the refactor's overhead:
//!
//! * `eval/lookup` — one full lookup-graph evaluation over a default
//!   vNIC (the work `bench_gate.sh` also floors end-to-end);
//! * `eval/overhead` — the same graph shape with the table reads
//!   replaced by no-op stages, isolating dispatch + predicate cost;
//! * `plan/costs_from_plan` — realizing the slow-path cost plan against
//!   a charged total (runs once per profiled slow-path packet).

use criterion::{criterion_group, criterion_main, Criterion};
use nezha_types::{Direction, FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::stage::costing::costs_from_plan;
use nezha_vswitch::stage::lookup::{direction_lookup, lookup_graph};
use nezha_vswitch::stage::{
    branch, guard, seq, stage, tee, PktCtx, Stage, StageGraph, StageVerdict, SwitchEnv, SLOW_PLAN,
};
use nezha_vswitch::vnic::{Vnic, VnicProfile};
use std::hint::black_box;

/// A stage that touches no tables: the graph shape without the work.
#[derive(Debug)]
struct Noop(&'static str);

impl Stage<PktCtx> for Noop {
    fn name(&self) -> &'static str {
        self.0
    }
    fn eval(&self, _ctx: &mut PktCtx, _env: &mut (dyn SwitchEnv + '_)) -> StageVerdict {
        StageVerdict::Continue
    }
}

/// The lookup graph's exact topology (same seq/branch/guard/tee nesting)
/// over no-op stages, so the diff against `eval/lookup` is pure
/// combinator-dispatch overhead.
fn noop_graph() -> StageGraph<PktCtx> {
    fn is_tx(ctx: &PktCtx) -> bool {
        ctx.dir == Direction::Tx
    }
    fn never(_: &PktCtx) -> bool {
        false
    }
    StageGraph::compile(seq(vec![
        stage(Noop("acl")),
        stage(Noop("qos-classify")),
        stage(Noop("stats-policy")),
        branch(
            "egress-routing",
            is_tx,
            seq(vec![
                stage(Noop("pbr")),
                branch(
                    "pbr-steer",
                    never,
                    stage(Noop("pbr-steer-hop")),
                    seq(vec![
                        stage(Noop("route")),
                        guard("overlay-hop", never, stage(Noop("vnic-server"))),
                    ]),
                ),
            ]),
            stage(Noop("rx-local")),
        ),
        guard("snat", is_tx, stage(Noop("nat"))),
        tee(stage(Noop("mirror"))),
    ]))
    .expect("noop graph is valid")
}

fn default_vnic() -> Vnic {
    Vnic::new(
        VnicId(1),
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    )
}

fn tuple_for(i: u32) -> FiveTuple {
    FiveTuple::tcp(
        Ipv4Addr::new(10, 7, 1, (i % 200) as u8 + 1),
        (i % 50_000) as u16 + 1024,
        Ipv4Addr::new(10, 7, 0, 1),
        9000,
    )
}

fn bench_stage_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("stage_graph");
    let vnic = default_vnic();

    let full = lookup_graph();
    group.bench_function("eval/lookup", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(direction_lookup(&full, &vnic, &tuple_for(i), Direction::Tx))
        });
    });

    let noop = noop_graph();
    group.bench_function("eval/overhead", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(direction_lookup(&noop, &vnic, &tuple_for(i), Direction::Tx))
        });
    });

    let costs = nezha_vswitch::config::VSwitchConfig::default().costs;
    group.bench_function("plan/costs_from_plan", |b| {
        let mut total = 0u64;
        b.iter(|| {
            total = total.wrapping_add(977) % 1_000_000;
            black_box(costs_from_plan(SLOW_PLAN, &costs, &vnic, 1500, total))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_stage_graph);
criterion_main!(benches);

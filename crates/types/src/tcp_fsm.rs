//! Connection-tracking TCP finite state machine.
//!
//! This is the *vSwitch's* view of a TCP connection (conntrack-style), not
//! an endpoint implementation: it watches flags pass in both directions and
//! tracks enough state to (a) age entries correctly — established sessions
//! live ~8 s idle (paper §2.2.2) while embryonic SYN-state sessions get a
//! much shorter aging time to blunt SYN floods (paper §7.3) — and (b)
//! support stateful NFs that depend on connection status.

use crate::flow::Direction;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Conntrack states, a deliberately small subset of RFC 793's machine:
/// the vSwitch only needs to distinguish "establishing", "established",
/// "closing", and "closed" for aging and policy purposes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, Default)]
pub enum TcpState {
    /// No packets seen yet.
    #[default]
    None,
    /// A SYN was seen from the session originator; embryonic session.
    SynSent,
    /// SYN+ACK seen from the responder.
    SynReceived,
    /// Three-way handshake complete; data may flow.
    Established,
    /// A FIN has been seen from one side.
    FinWait,
    /// FINs seen from both sides; draining.
    Closing,
    /// Connection is closed (FIN handshake done or RST seen).
    Closed,
}

impl TcpState {
    /// True for embryonic (not yet established) states, which receive the
    /// short SYN aging time of paper §7.3.
    pub const fn is_embryonic(self) -> bool {
        matches!(self, TcpState::SynSent | TcpState::SynReceived)
    }

    /// True once the handshake completed and until close.
    pub const fn is_established(self) -> bool {
        matches!(
            self,
            TcpState::Established | TcpState::FinWait | TcpState::Closing
        )
    }

    /// True when the entry can be reclaimed immediately.
    pub const fn is_closed(self) -> bool {
        matches!(self, TcpState::Closed)
    }
}

impl fmt::Display for TcpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TcpState::None => "NONE",
            TcpState::SynSent => "SYN_SENT",
            TcpState::SynReceived => "SYN_RECEIVED",
            TcpState::Established => "ESTABLISHED",
            TcpState::FinWait => "FIN_WAIT",
            TcpState::Closing => "CLOSING",
            TcpState::Closed => "CLOSED",
        };
        write!(f, "{s}")
    }
}

/// An observed TCP segment, reduced to what the tracker needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TcpEvent {
    /// Direction relative to the session *originator* (the side that sent
    /// the first packet): `Tx` = from originator, `Rx` = from responder.
    pub from_originator: bool,
    /// SYN flag.
    pub syn: bool,
    /// ACK flag.
    pub ack: bool,
    /// FIN flag.
    pub fin: bool,
    /// RST flag.
    pub rst: bool,
}

impl TcpEvent {
    /// Event for a plain data/ACK segment.
    pub const fn data(from_originator: bool) -> Self {
        TcpEvent {
            from_originator,
            syn: false,
            ack: true,
            fin: false,
            rst: false,
        }
    }

    /// Event for an initial SYN.
    pub const fn syn(from_originator: bool) -> Self {
        TcpEvent {
            from_originator,
            syn: true,
            ack: false,
            fin: false,
            rst: false,
        }
    }

    /// Event for a SYN+ACK.
    pub const fn syn_ack(from_originator: bool) -> Self {
        TcpEvent {
            from_originator,
            syn: true,
            ack: true,
            fin: false,
            rst: false,
        }
    }

    /// Event for a FIN (with ACK, as in practice).
    pub const fn fin(from_originator: bool) -> Self {
        TcpEvent {
            from_originator,
            syn: false,
            ack: true,
            fin: true,
            rst: false,
        }
    }

    /// Event for an RST.
    pub const fn rst(from_originator: bool) -> Self {
        TcpEvent {
            from_originator,
            syn: false,
            ack: false,
            fin: false,
            rst: true,
        }
    }

    /// Derives an event from header flags plus the packet's direction and
    /// the recorded first-packet direction of the session.
    pub fn from_flags(
        flags: crate::headers::TcpFlags,
        pkt_dir: Direction,
        first_dir: Direction,
    ) -> Self {
        use crate::headers::TcpFlags as F;
        TcpEvent {
            from_originator: pkt_dir == first_dir,
            syn: flags.contains(F::SYN),
            ack: flags.contains(F::ACK),
            fin: flags.contains(F::FIN),
            rst: flags.contains(F::RST),
        }
    }
}

impl TcpState {
    /// Advances the machine on an observed segment and returns the next
    /// state. The tracker is forgiving of retransmissions (SYN in `SynSent`
    /// stays in `SynSent`) and strict about RST (always `Closed`).
    pub fn step(self, ev: TcpEvent) -> TcpState {
        use TcpState::*;
        if ev.rst {
            return Closed;
        }
        match self {
            None => {
                if ev.syn && !ev.ack {
                    SynSent
                } else {
                    // Mid-stream pickup (e.g. after failover or table
                    // eviction): treat any non-SYN as established traffic so
                    // long-lived connections keep working.
                    Established
                }
            }
            SynSent => {
                if ev.syn && ev.ack && !ev.from_originator {
                    SynReceived
                } else if ev.fin {
                    FinWait
                } else {
                    SynSent
                }
            }
            SynReceived => {
                if ev.ack && !ev.syn && ev.from_originator {
                    Established
                } else if ev.fin {
                    FinWait
                } else {
                    SynReceived
                }
            }
            Established => {
                if ev.fin {
                    FinWait
                } else {
                    Established
                }
            }
            FinWait => {
                if ev.fin {
                    Closing
                } else {
                    FinWait
                }
            }
            Closing => {
                if ev.ack && !ev.fin {
                    Closed
                } else {
                    Closing
                }
            }
            Closed => Closed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_way_handshake() {
        let s = TcpState::None
            .step(TcpEvent::syn(true))
            .step(TcpEvent::syn_ack(false))
            .step(TcpEvent::data(true));
        assert_eq!(s, TcpState::Established);
        assert!(s.is_established());
        assert!(!s.is_embryonic());
    }

    #[test]
    fn graceful_close() {
        let s = TcpState::Established
            .step(TcpEvent::fin(true))
            .step(TcpEvent::fin(false))
            .step(TcpEvent::data(true));
        assert_eq!(s, TcpState::Closed);
        assert!(s.is_closed());
    }

    #[test]
    fn rst_closes_from_any_state() {
        for s in [
            TcpState::None,
            TcpState::SynSent,
            TcpState::SynReceived,
            TcpState::Established,
            TcpState::FinWait,
            TcpState::Closing,
        ] {
            assert_eq!(s.step(TcpEvent::rst(true)), TcpState::Closed);
            assert_eq!(s.step(TcpEvent::rst(false)), TcpState::Closed);
        }
    }

    #[test]
    fn syn_retransmission_stays_embryonic() {
        let s = TcpState::None
            .step(TcpEvent::syn(true))
            .step(TcpEvent::syn(true));
        assert_eq!(s, TcpState::SynSent);
        assert!(s.is_embryonic());
    }

    #[test]
    fn midstream_pickup_is_established() {
        // After failover the session entry may be recreated mid-connection;
        // the first observed segment is plain data.
        assert_eq!(
            TcpState::None.step(TcpEvent::data(false)),
            TcpState::Established
        );
    }

    #[test]
    fn syn_ack_from_originator_does_not_advance() {
        // A spoofed SYN+ACK from the same side as the original SYN must not
        // move the handshake forward.
        let s = TcpState::SynSent.step(TcpEvent::syn_ack(true));
        assert_eq!(s, TcpState::SynSent);
    }

    #[test]
    fn event_from_flags_maps_direction() {
        use crate::headers::TcpFlags as F;
        let ev = TcpEvent::from_flags(F::SYN | F::ACK, Direction::Rx, Direction::Tx);
        assert!(!ev.from_originator);
        assert!(ev.syn && ev.ack && !ev.fin && !ev.rst);
        let ev = TcpEvent::from_flags(F::FIN | F::ACK, Direction::Tx, Direction::Tx);
        assert!(ev.from_originator && ev.fin);
    }

    #[test]
    fn closed_is_terminal() {
        assert_eq!(TcpState::Closed.step(TcpEvent::syn(true)), TcpState::Closed);
        assert_eq!(
            TcpState::Closed.step(TcpEvent::data(false)),
            TcpState::Closed
        );
    }
}

//! Session state — the data Nezha keeps **local, in one copy**.
//!
//! A session-table entry records bidirectional flows plus their shared
//! state (paper Fig. 1). The state has several independently-optional
//! components (TCP FSM, first-packet direction, stateful-decap address,
//! flow statistics); paper §7.1 measures the *used* state at 5–8 B average
//! against a fixed 64 B slab — we model both the slab and the measured
//! size so the Fig. 15 experiment can reproduce that gap.

use crate::addr::Ipv4Addr;
use crate::flow::Direction;
use crate::tcp_fsm::TcpState;
use serde::{Deserialize, Serialize};

/// State recorded by stateful decapsulation (paper §5.2): the overlay
/// source (the load balancer's address) seen when the RX packet was
/// decapsulated, so TX responses can be re-encapsulated toward the LB
/// rather than leaking directly to the client.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct StatefulDecapState {
    /// The recorded overlay source address (LB VIP endpoint).
    pub overlay_src: Ipv4Addr,
}

/// Flow-level statistics, recorded only when a statistics policy applies
/// (making this the canonical *rule-table-involved* state of §3.2.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct StatsState {
    /// Active statistics policy id (0 = none).
    pub policy: u8,
    /// Packets seen TX.
    pub tx_packets: u64,
    /// Packets seen RX.
    pub rx_packets: u64,
    /// Bytes seen TX.
    pub tx_bytes: u64,
    /// Bytes seen RX.
    pub rx_bytes: u64,
}

impl StatsState {
    /// Records one packet in the given direction.
    pub fn record(&mut self, dir: Direction, bytes: u64) {
        match dir {
            Direction::Tx => {
                self.tx_packets += 1;
                self.tx_bytes += bytes;
            }
            Direction::Rx => {
                self.rx_packets += 1;
                self.rx_bytes += bytes;
            }
        }
    }
}

/// The complete per-session state blob.
///
/// The fixed allocation slab is [`SessionState::SLAB_BYTES`] = 64 B (paper
/// §7.1); [`SessionState::used_bytes`] reports the bytes a variable-length
/// encoding would need, which Fig. 15 shows averages 5–8 B in production.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct SessionState {
    /// Direction of the session's first packet — the stateful-ACL state.
    pub first_dir: Option<Direction>,
    /// TCP connection tracking state (TCP sessions only).
    pub tcp: TcpState,
    /// Stateful-decap recorded address, when that NF applies.
    pub decap: Option<StatefulDecapState>,
    /// Flow statistics, when a statistics policy applies.
    pub stats: StatsState,
}

impl SessionState {
    /// Fixed state slab size used by the production vSwitch (paper §7.1).
    pub const SLAB_BYTES: usize = 64;

    /// A fresh state whose first packet had direction `dir`.
    pub fn first_packet(dir: Direction) -> Self {
        SessionState {
            first_dir: Some(dir),
            ..Default::default()
        }
    }

    /// Bytes a compact variable-length encoding of the *used* state needs.
    ///
    /// Accounting (mirrors the paper's 5–8 B average): first-packet
    /// direction packs with the TCP FSM into 1 byte; a live (non-terminal)
    /// TCP FSM costs 4 more bytes of tracking data; stateful decap stores a
    /// 4-byte address; an active stats policy stores 1 + 32 bytes of
    /// counters. A pure stateless flow (no state at all) uses 0 bytes but
    /// still occupies the full 64-byte slab in the fixed layout.
    pub fn used_bytes(&self) -> usize {
        let mut n = 0;
        if self.first_dir.is_some() || self.tcp != TcpState::None {
            n += 1;
        }
        if self.tcp != TcpState::None && !self.tcp.is_closed() {
            n += 4;
        }
        if self.decap.is_some() {
            n += 4;
        }
        if self.stats.policy != 0 {
            n += 1 + 32;
        }
        n
    }

    /// True when no stateful NF recorded anything (slab entirely wasted).
    pub fn is_empty(&self) -> bool {
        self.used_bytes() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_state_uses_zero_of_its_slab() {
        let s = SessionState::default();
        assert!(s.is_empty());
        assert_eq!(s.used_bytes(), 0);
        assert_eq!(SessionState::SLAB_BYTES, 64);
    }

    #[test]
    fn typical_stateful_acl_state_is_small() {
        // The common case in production: first-dir + established TCP FSM.
        let mut s = SessionState::first_packet(Direction::Tx);
        s.tcp = TcpState::Established;
        assert_eq!(s.used_bytes(), 5);
        assert!(s.used_bytes() <= 8, "must land in the paper's 5-8B band");
    }

    #[test]
    fn decap_state_adds_four_bytes() {
        let mut s = SessionState::first_packet(Direction::Rx);
        s.decap = Some(StatefulDecapState {
            overlay_src: Ipv4Addr::new(10, 9, 9, 9),
        });
        assert_eq!(s.used_bytes(), 1 + 4);
    }

    #[test]
    fn stats_state_is_the_heavy_case() {
        let mut s = SessionState::first_packet(Direction::Tx);
        s.stats.policy = 2;
        s.stats.record(Direction::Tx, 1500);
        s.stats.record(Direction::Rx, 60);
        assert_eq!(s.stats.tx_packets, 1);
        assert_eq!(s.stats.rx_bytes, 60);
        assert_eq!(s.used_bytes(), 1 + 33);
        assert!(s.used_bytes() <= SessionState::SLAB_BYTES);
    }

    #[test]
    fn closed_tcp_sheds_tracking_bytes() {
        let mut s = SessionState::first_packet(Direction::Tx);
        s.tcp = TcpState::Established;
        let live = s.used_bytes();
        s.tcp = TcpState::Closed;
        assert!(s.used_bytes() < live);
    }
}

//! Wire-format packet headers: Ethernet II, IPv4, TCP, UDP, VXLAN.
//!
//! Encoders write network byte order into a [`bytes::BufMut`]; decoders
//! parse from a byte slice and are strict (smoltcp-style): short buffers,
//! bad versions, and bad checksums are all errors, never silently ignored.
//!
//! Only the fields the vSwitch data plane actually consults are modeled;
//! options are not supported (mirroring smoltcp's documented IPv4 stance).

use crate::error::{CodecError, CodecResult};
use crate::five_tuple::{FiveTuple, IpProtocol};
use crate::{Ipv4Addr, MacAddr};
use bytes::BufMut;
use serde::{Deserialize, Serialize};

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Conventional VXLAN UDP destination port.
pub const VXLAN_UDP_PORT: u16 = 4789;

/// The ones-complement Internet checksum (RFC 1071) over `data`.
///
/// Odd-length inputs are zero-padded on the right, per the RFC.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += u16::from_be_bytes([*last, 0]) as u32;
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Ethernet II frame header (14 bytes, no 802.1Q tags).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType of the payload.
    pub ethertype: u16,
}

impl EthernetHeader {
    /// Encoded size in bytes.
    pub const WIRE_LEN: usize = 14;

    /// Builds an IPv4 frame header.
    pub const fn ipv4(src: MacAddr, dst: MacAddr) -> Self {
        EthernetHeader {
            dst,
            src,
            ethertype: ETHERTYPE_IPV4,
        }
    }

    /// Serializes the header.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_slice(&self.dst.0);
        buf.put_slice(&self.src.0);
        buf.put_u16(self.ethertype);
    }

    /// Parses the header, returning it and the bytes consumed.
    pub fn decode(data: &[u8]) -> CodecResult<(Self, usize)> {
        if data.len() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                what: "ethernet",
                need: Self::WIRE_LEN,
                have: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = u16::from_be_bytes([data[12], data[13]]);
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype,
            },
            Self::WIRE_LEN,
        ))
    }
}

/// IPv4 header (20 bytes; options unsupported).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Ipv4Header {
    /// Differentiated services byte (QoS class selectors).
    pub dscp_ecn: u8,
    /// Total length of the IP datagram (header + payload).
    pub total_len: u16,
    /// Identification (unused by the data plane; retained for fidelity).
    pub ident: u16,
    /// Time to live; decremented per routed hop.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
}

impl Ipv4Header {
    /// Encoded size in bytes (no options).
    pub const WIRE_LEN: usize = 20;
    /// Default TTL, matching smoltcp's configurable default of 64.
    pub const DEFAULT_TTL: u8 = 64;

    /// Builds a header for `payload_len` bytes of L4 payload.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (Self::WIRE_LEN + payload_len) as u16,
            ident: 0,
            ttl: Self::DEFAULT_TTL,
            protocol,
            src,
            dst,
        }
    }

    /// Serializes the header, computing the header checksum.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        let mut raw = [0u8; Self::WIRE_LEN];
        raw[0] = 0x45; // version 4, IHL 5
        raw[1] = self.dscp_ecn;
        raw[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        raw[4..6].copy_from_slice(&self.ident.to_be_bytes());
        // flags + fragment offset: DF set, never fragmented in our overlay.
        raw[6] = 0x40;
        raw[8] = self.ttl;
        raw[9] = self.protocol.as_u8();
        raw[12..16].copy_from_slice(&self.src.octets());
        raw[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&raw);
        raw[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&raw);
    }

    /// Parses and validates the header (version, IHL, checksum, protocol).
    pub fn decode(data: &[u8]) -> CodecResult<(Self, usize)> {
        if data.len() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                what: "ipv4",
                need: Self::WIRE_LEN,
                have: data.len(),
            });
        }
        if data[0] >> 4 != 4 {
            return Err(CodecError::BadField {
                what: "ipv4",
                field: "version",
                value: (data[0] >> 4) as u64,
            });
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl != Self::WIRE_LEN {
            // Options unsupported, as documented.
            return Err(CodecError::BadField {
                what: "ipv4",
                field: "ihl",
                value: ihl as u64,
            });
        }
        let got = u16::from_be_bytes([data[10], data[11]]);
        let mut zeroed = [0u8; Self::WIRE_LEN];
        zeroed.copy_from_slice(&data[..Self::WIRE_LEN]);
        zeroed[10] = 0;
        zeroed[11] = 0;
        let want = internet_checksum(&zeroed);
        if got != want {
            return Err(CodecError::BadChecksum {
                what: "ipv4",
                got,
                want,
            });
        }
        let protocol = IpProtocol::from_u8(data[9]).ok_or(CodecError::BadField {
            what: "ipv4",
            field: "protocol",
            value: data[9] as u64,
        })?;
        let total_len = u16::from_be_bytes([data[2], data[3]]);
        if (total_len as usize) < Self::WIRE_LEN {
            return Err(CodecError::BadLength {
                what: "ipv4",
                claimed: total_len as usize,
                available: data.len(),
            });
        }
        Ok((
            Ipv4Header {
                dscp_ecn: data[1],
                total_len,
                ident: u16::from_be_bytes([data[4], data[5]]),
                ttl: data[8],
                protocol,
                src: Ipv4Addr::from_octets([data[12], data[13], data[14], data[15]]),
                dst: Ipv4Addr::from_octets([data[16], data[17], data[18], data[19]]),
            },
            Self::WIRE_LEN,
        ))
    }
}

/// A minimal local reimplementation of the parts of `bitflags` we need,
/// avoiding an extra dependency for one type.
macro_rules! bitflags_lite {
    (
        $(#[$meta:meta])*
        pub struct $name:ident: $ty:ty {
            $( $(#[$fmeta:meta])* const $flag:ident = $val:expr; )*
        }
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize, Default)]
        pub struct $name(pub $ty);

        impl $name {
            $( $(#[$fmeta])* pub const $flag: $name = $name($val); )*

            /// The empty flag set.
            pub const fn empty() -> Self { $name(0) }

            /// True if every bit of `other` is set in `self`.
            pub const fn contains(self, other: $name) -> bool {
                self.0 & other.0 == other.0
            }

            /// True if any bit of `other` is set in `self`.
            pub const fn intersects(self, other: $name) -> bool {
                self.0 & other.0 != 0
            }
        }

        impl std::ops::BitOr for $name {
            type Output = $name;
            fn bitor(self, rhs: $name) -> $name { $name(self.0 | rhs.0) }
        }
    };
}

bitflags_lite! {
    /// TCP header flags (the subset connection tracking consults).
    pub struct TcpFlags: u8 {
        /// FIN: sender is finished.
        const FIN = 0x01;
        /// SYN: synchronize sequence numbers.
        const SYN = 0x02;
        /// RST: reset the connection.
        const RST = 0x04;
        /// PSH: push buffered data.
        const PSH = 0x08;
        /// ACK: acknowledgment field valid.
        const ACK = 0x10;
    }
}

/// TCP header (20 bytes; options elided — MSS etc. are not consulted by the
/// vSwitch, only by endpoints which the simulator models abstractly).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
}

impl TcpHeader {
    /// Encoded size in bytes (no options).
    pub const WIRE_LEN: usize = 20;

    /// Serializes the header. The transport checksum is computed over the
    /// header with a zero payload pseudo-contribution; the simulator treats
    /// payloads as opaque length so this is sufficient for validation.
    pub fn encode<B: BufMut>(&self, buf: &mut B, src_ip: Ipv4Addr, dst_ip: Ipv4Addr) {
        let mut raw = [0u8; Self::WIRE_LEN];
        raw[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        raw[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        raw[4..8].copy_from_slice(&self.seq.to_be_bytes());
        raw[8..12].copy_from_slice(&self.ack.to_be_bytes());
        raw[12] = 5 << 4; // data offset = 5 words
        raw[13] = self.flags.0;
        raw[14..16].copy_from_slice(&self.window.to_be_bytes());
        let csum = Self::checksum(&raw, src_ip, dst_ip);
        raw[16..18].copy_from_slice(&csum.to_be_bytes());
        buf.put_slice(&raw);
    }

    fn checksum(raw: &[u8; Self::WIRE_LEN], src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> u16 {
        let mut pseudo = Vec::with_capacity(12 + Self::WIRE_LEN);
        pseudo.extend_from_slice(&src_ip.octets());
        pseudo.extend_from_slice(&dst_ip.octets());
        pseudo.push(0);
        pseudo.push(IpProtocol::Tcp.as_u8());
        pseudo.extend_from_slice(&(Self::WIRE_LEN as u16).to_be_bytes());
        pseudo.extend_from_slice(raw);
        internet_checksum(&pseudo)
    }

    /// Parses and validates the header.
    pub fn decode(data: &[u8], src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> CodecResult<(Self, usize)> {
        if data.len() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                what: "tcp",
                need: Self::WIRE_LEN,
                have: data.len(),
            });
        }
        let offset = (data[12] >> 4) as usize * 4;
        if offset != Self::WIRE_LEN {
            return Err(CodecError::BadField {
                what: "tcp",
                field: "data_offset",
                value: offset as u64,
            });
        }
        let mut raw = [0u8; Self::WIRE_LEN];
        raw.copy_from_slice(&data[..Self::WIRE_LEN]);
        let got = u16::from_be_bytes([raw[16], raw[17]]);
        raw[16] = 0;
        raw[17] = 0;
        let want = Self::checksum(&raw, src_ip, dst_ip);
        if got != want {
            return Err(CodecError::BadChecksum {
                what: "tcp",
                got,
                want,
            });
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                flags: TcpFlags(data[13]),
                window: u16::from_be_bytes([data[14], data[15]]),
            },
            Self::WIRE_LEN,
        ))
    }
}

/// UDP header (8 bytes).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload.
    pub length: u16,
}

impl UdpHeader {
    /// Encoded size in bytes.
    pub const WIRE_LEN: usize = 8;

    /// Builds a header for `payload_len` bytes of payload.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (Self::WIRE_LEN + payload_len) as u16,
        }
    }

    /// Serializes the header (checksum 0 = disabled, legal for IPv4 UDP).
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(self.length);
        buf.put_u16(0);
    }

    /// Parses the header and validates its length field.
    pub fn decode(data: &[u8]) -> CodecResult<(Self, usize)> {
        if data.len() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                what: "udp",
                need: Self::WIRE_LEN,
                have: data.len(),
            });
        }
        let length = u16::from_be_bytes([data[4], data[5]]);
        if (length as usize) < Self::WIRE_LEN || (length as usize) > data.len() {
            return Err(CodecError::BadLength {
                what: "udp",
                claimed: length as usize,
                available: data.len(),
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                length,
            },
            Self::WIRE_LEN,
        ))
    }
}

/// VXLAN header (8 bytes, RFC 7348). The overlay encapsulation used between
/// vSwitches: outer IP/UDP addresses name *servers*, the VNI names the
/// tenant VPC.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct VxlanHeader {
    /// 24-bit VXLAN network identifier. We map VNI = VPC id.
    pub vni: u32,
}

impl VxlanHeader {
    /// Encoded size in bytes.
    pub const WIRE_LEN: usize = 8;

    /// Serializes the header.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(0x08); // flags: I bit set (VNI valid)
        buf.put_u8(0);
        buf.put_u16(0);
        buf.put_u32(self.vni << 8);
    }

    /// Parses and validates the header (I bit must be set).
    pub fn decode(data: &[u8]) -> CodecResult<(Self, usize)> {
        if data.len() < Self::WIRE_LEN {
            return Err(CodecError::Truncated {
                what: "vxlan",
                need: Self::WIRE_LEN,
                have: data.len(),
            });
        }
        if data[0] & 0x08 == 0 {
            return Err(CodecError::BadField {
                what: "vxlan",
                field: "flags",
                value: data[0] as u64,
            });
        }
        let vni = u32::from_be_bytes([data[4], data[5], data[6], data[7]]) >> 8;
        Ok((VxlanHeader { vni }, Self::WIRE_LEN))
    }
}

/// Extracts a [`FiveTuple`] from a decoded IPv4 header plus its transport
/// header bytes. ICMP uses port 0/0.
pub fn five_tuple_of(ip: &Ipv4Header, l4: &[u8]) -> CodecResult<FiveTuple> {
    let (src_port, dst_port) = match ip.protocol {
        IpProtocol::Tcp => {
            let (t, _) = TcpHeader::decode(l4, ip.src, ip.dst)?;
            (t.src_port, t.dst_port)
        }
        IpProtocol::Udp => {
            let (u, _) = UdpHeader::decode(l4)?;
            (u.src_port, u.dst_port)
        }
        IpProtocol::Icmp => (0, 0),
    };
    Ok(FiveTuple {
        src_ip: ip.src,
        dst_ip: ip.dst,
        src_port,
        dst_port,
        protocol: ip.protocol,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example-style check: checksum of a buffer plus its own
        // checksum folds to zero.
        let data = [0x45u8, 0x00, 0x00, 0x3c, 0x1c, 0x46, 0x40, 0x00, 0x40, 0x06];
        let c = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&c.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn checksum_odd_length() {
        assert_eq!(internet_checksum(&[0xff]), !0xff00u16);
    }

    #[test]
    fn ethernet_round_trip() {
        let h = EthernetHeader::ipv4(MacAddr::from_id(1), MacAddr::from_id(2));
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), EthernetHeader::WIRE_LEN);
        let (d, n) = EthernetHeader::decode(&buf).unwrap();
        assert_eq!(d, h);
        assert_eq!(n, EthernetHeader::WIRE_LEN);
    }

    #[test]
    fn ethernet_truncated() {
        assert!(matches!(
            EthernetHeader::decode(&[0u8; 5]),
            Err(CodecError::Truncated {
                what: "ethernet",
                ..
            })
        ));
    }

    #[test]
    fn ipv4_round_trip() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Tcp,
            100,
        );
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let (d, n) = Ipv4Header::decode(&buf).unwrap();
        assert_eq!(n, Ipv4Header::WIRE_LEN);
        assert_eq!(d, h);
    }

    #[test]
    fn ipv4_rejects_corrupt_checksum() {
        let h = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProtocol::Udp,
            0,
        );
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut raw = buf.to_vec();
        raw[12] ^= 0xff; // flip a source-address byte
        assert!(matches!(
            Ipv4Header::decode(&raw),
            Err(CodecError::BadChecksum { what: "ipv4", .. })
        ));
    }

    #[test]
    fn ipv4_rejects_bad_version_and_options() {
        let h = Ipv4Header::new(Ipv4Addr(1), Ipv4Addr(2), IpProtocol::Tcp, 0);
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut raw = buf.to_vec();
        raw[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::decode(&raw),
            Err(CodecError::BadField {
                field: "version",
                ..
            })
        ));
        raw[0] = 0x46; // version 4, IHL 6 (options present)
        assert!(matches!(
            Ipv4Header::decode(&raw),
            Err(CodecError::BadField { field: "ihl", .. })
        ));
    }

    #[test]
    fn tcp_round_trip_and_checksum() {
        let src = Ipv4Addr::new(172, 16, 0, 1);
        let dst = Ipv4Addr::new(172, 16, 0, 2);
        let h = TcpHeader {
            src_port: 43210,
            dst_port: 80,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            flags: TcpFlags::SYN | TcpFlags::ACK,
            window: 65535,
        };
        let mut buf = BytesMut::new();
        h.encode(&mut buf, src, dst);
        let (d, _) = TcpHeader::decode(&buf, src, dst).unwrap();
        assert_eq!(d, h);
        // A different pseudo-header address must fail the checksum. (Note:
        // merely *swapping* src/dst keeps the ones-complement sum identical,
        // so the altered address must change the word values.)
        assert!(TcpHeader::decode(&buf, Ipv4Addr::new(9, 9, 9, 9), dst).is_err());
    }

    #[test]
    fn tcp_flags_ops() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.intersects(TcpFlags::SYN | TcpFlags::RST));
        assert!(!TcpFlags::empty().intersects(f));
    }

    #[test]
    fn udp_round_trip_and_bad_length() {
        let h = UdpHeader::new(1000, 2000, 32);
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        buf.put_slice(&[0u8; 32]);
        let (d, n) = UdpHeader::decode(&buf).unwrap();
        assert_eq!(d, h);
        assert_eq!(n, UdpHeader::WIRE_LEN);
        // Claimed length beyond the buffer is rejected.
        let mut raw = buf.to_vec();
        raw[4] = 0xff;
        raw[5] = 0xff;
        assert!(matches!(
            UdpHeader::decode(&raw),
            Err(CodecError::BadLength { what: "udp", .. })
        ));
    }

    #[test]
    fn vxlan_round_trip() {
        let h = VxlanHeader { vni: 0x00ab_cdef };
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let (d, n) = VxlanHeader::decode(&buf).unwrap();
        assert_eq!(d.vni, 0x00ab_cdef);
        assert_eq!(n, VxlanHeader::WIRE_LEN);
    }

    #[test]
    fn vxlan_requires_i_bit() {
        let raw = [0u8; 8];
        assert!(matches!(
            VxlanHeader::decode(&raw),
            Err(CodecError::BadField { what: "vxlan", .. })
        ));
    }

    #[test]
    fn five_tuple_extraction_tcp_udp_icmp() {
        let src = Ipv4Addr::new(10, 0, 0, 1);
        let dst = Ipv4Addr::new(10, 0, 0, 2);

        let ip = Ipv4Header::new(src, dst, IpProtocol::Tcp, TcpHeader::WIRE_LEN);
        let t = TcpHeader {
            src_port: 5,
            dst_port: 6,
            seq: 0,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 0,
        };
        let mut buf = BytesMut::new();
        t.encode(&mut buf, src, dst);
        let ft = five_tuple_of(&ip, &buf).unwrap();
        assert_eq!((ft.src_port, ft.dst_port), (5, 6));

        let ip = Ipv4Header::new(src, dst, IpProtocol::Udp, UdpHeader::WIRE_LEN);
        let mut buf = BytesMut::new();
        UdpHeader::new(7, 8, 0).encode(&mut buf);
        let ft = five_tuple_of(&ip, &buf).unwrap();
        assert_eq!((ft.src_port, ft.dst_port), (7, 8));

        let ip = Ipv4Header::new(src, dst, IpProtocol::Icmp, 0);
        let ft = five_tuple_of(&ip, &[]).unwrap();
        assert_eq!((ft.src_port, ft.dst_port), (0, 0));
    }
}

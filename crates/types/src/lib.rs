//! # nezha-types
//!
//! Foundation types for the Nezha distributed vSwitch load-sharing system:
//! addresses and identifiers, 5-tuples and flow/session keys, wire-format
//! packet headers (Ethernet / IPv4 / TCP / UDP / VXLAN) with encode/decode
//! and checksum support, packet processing actions and pre-actions, the TCP
//! connection-tracking finite state machine, and the **Nezha Service Header
//! (NSH)** — the outer header Nezha uses to carry session state (TX path)
//! and pre-actions (RX path) between a vNIC backend (BE) and its frontends
//! (FEs).
//!
//! Everything in this crate is plain data: no I/O, no clocks, no global
//! state. The simulator (`nezha-sim`), the vSwitch model (`nezha-vswitch`)
//! and the Nezha control/data planes (`nezha-core`) are all built on these
//! types.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod addr;
pub mod error;
pub mod five_tuple;
pub mod flow;
pub mod headers;
pub mod nsh;
pub mod packet;
pub mod state;
pub mod tcp_fsm;

pub use action::{Action, Decision, PreAction, PreActionPair};
pub use addr::{Ipv4Addr, MacAddr, ServerId, VnicId, VpcId};
pub use error::{CodecError, CodecResult, NezhaError, NezhaResult};
pub use five_tuple::{FiveTuple, IpProtocol};
pub use flow::{Direction, FlowKey, SessionKey};
pub use headers::{EthernetHeader, Ipv4Header, TcpFlags, TcpHeader, UdpHeader, VxlanHeader};
pub use nsh::{NezhaHeader, NezhaPayloadKind, NshView};
pub use packet::{Packet, PacketKind};
pub use state::{SessionState, StatefulDecapState, StatsState};
pub use tcp_fsm::{TcpEvent, TcpState};

//! Error types for wire-format encoding/decoding and control-plane
//! operations.

use crate::addr::{ServerId, VnicId};
use std::fmt;

/// Result alias for codec operations.
pub type CodecResult<T> = Result<T, CodecError>;

/// Result alias for control-plane operations on the cluster.
pub type NezhaResult<T> = Result<T, NezhaError>;

/// Errors returned by the cluster's public control-plane API.
///
/// Every fallible operation on [`Cluster`] reports its failure through
/// this enum instead of panicking, so harnesses and examples can probe
/// invalid operations (double offload, pinning to a non-FE, …) and
/// assert on the precise reason.
///
/// [`Cluster`]: https://docs.rs/nezha-core
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NezhaError {
    /// The vNIC id is not installed in the cluster.
    UnknownVnic(VnicId),
    /// The server id is outside the topology (or the slot is empty).
    UnknownServer(ServerId),
    /// The vNIC is already offloaded; offloading twice is invalid.
    AlreadyOffloaded(VnicId),
    /// The operation requires the vNIC to be offloaded, and it is not.
    NotOffloaded(VnicId),
    /// The offload has not reached its final stage yet.
    OffloadInProgress(VnicId),
    /// No idle vSwitch satisfies the FE selection constraints.
    NoIdleVswitches,
    /// The target server does not host an FE for this vNIC.
    NotAnFe {
        /// vNIC whose FE set was consulted.
        vnic: VnicId,
        /// Server that is not in that FE set.
        fe: ServerId,
    },
    /// A table/metadata allocation did not fit in vSwitch memory.
    InsufficientMemory {
        /// What was being allocated.
        what: &'static str,
    },
}

impl fmt::Display for NezhaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NezhaError::UnknownVnic(v) => write!(f, "unknown vNIC {}", v.0),
            NezhaError::UnknownServer(s) => write!(f, "unknown server {}", s.0),
            NezhaError::AlreadyOffloaded(v) => write!(f, "vNIC {} is already offloaded", v.0),
            NezhaError::NotOffloaded(v) => write!(f, "vNIC {} is not offloaded", v.0),
            NezhaError::OffloadInProgress(v) => {
                write!(f, "vNIC {}'s offload has not reached its final stage", v.0)
            }
            NezhaError::NoIdleVswitches => write!(f, "no idle vSwitches available"),
            NezhaError::NotAnFe { vnic, fe } => {
                write!(f, "server {} is not an FE of vNIC {}", fe.0, vnic.0)
            }
            NezhaError::InsufficientMemory { what } => {
                write!(f, "{what} does not fit in vSwitch memory")
            }
        }
    }
}

impl std::error::Error for NezhaError {}

/// Errors raised while parsing or serializing packet headers.
///
/// The decoder is strict in the smoltcp spirit: malformed input is rejected
/// with a precise reason rather than silently coerced, because a production
/// vSwitch must never act on a header it did not fully understand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input buffer ended before the fixed-size header was complete.
    Truncated {
        /// Header that was being parsed.
        what: &'static str,
        /// Bytes required by the header.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A version / magic / type field held an unsupported value.
    BadField {
        /// Header that was being parsed.
        what: &'static str,
        /// Field that failed validation.
        field: &'static str,
        /// The offending value, widened to u64 for display.
        value: u64,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Header whose checksum failed.
        what: &'static str,
        /// Checksum carried in the packet.
        got: u16,
        /// Checksum computed over the received bytes.
        want: u16,
    },
    /// A length field is inconsistent with the buffer.
    BadLength {
        /// Header that was being parsed.
        what: &'static str,
        /// Length claimed by the header.
        claimed: usize,
        /// Length actually available.
        available: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what, need, have } => {
                write!(f, "{what}: truncated (need {need} bytes, have {have})")
            }
            CodecError::BadField { what, field, value } => {
                write!(f, "{what}: unsupported {field} value {value:#x}")
            }
            CodecError::BadChecksum { what, got, want } => {
                write!(
                    f,
                    "{what}: checksum mismatch (got {got:#06x}, want {want:#06x})"
                )
            }
            CodecError::BadLength {
                what,
                claimed,
                available,
            } => {
                write!(
                    f,
                    "{what}: length field {claimed} exceeds available {available}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_precise() {
        let e = CodecError::Truncated {
            what: "ipv4",
            need: 20,
            have: 7,
        };
        assert_eq!(e.to_string(), "ipv4: truncated (need 20 bytes, have 7)");

        let e = CodecError::BadChecksum {
            what: "ipv4",
            got: 0x1234,
            want: 0xabcd,
        };
        assert!(e.to_string().contains("0x1234"));
        assert!(e.to_string().contains("0xabcd"));

        let e = CodecError::BadField {
            what: "nezha",
            field: "magic",
            value: 0xff,
        };
        assert!(e.to_string().contains("magic"));

        let e = CodecError::BadLength {
            what: "udp",
            claimed: 100,
            available: 8,
        };
        assert!(e.to_string().contains("100"));
    }

    #[test]
    fn nezha_error_messages_name_the_subject() {
        assert_eq!(
            NezhaError::UnknownVnic(VnicId(7)).to_string(),
            "unknown vNIC 7"
        );
        assert_eq!(
            NezhaError::AlreadyOffloaded(VnicId(3)).to_string(),
            "vNIC 3 is already offloaded"
        );
        let e = NezhaError::NotAnFe {
            vnic: VnicId(1),
            fe: ServerId(9),
        };
        assert!(e.to_string().contains("server 9"));
        assert!(e.to_string().contains("vNIC 1"));
        let e = NezhaError::InsufficientMemory {
            what: "BE metadata",
        };
        assert!(e.to_string().contains("BE metadata"));
    }
}

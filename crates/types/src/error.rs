//! Error types for wire-format encoding and decoding.

use std::fmt;

/// Result alias for codec operations.
pub type CodecResult<T> = Result<T, CodecError>;

/// Errors raised while parsing or serializing packet headers.
///
/// The decoder is strict in the smoltcp spirit: malformed input is rejected
/// with a precise reason rather than silently coerced, because a production
/// vSwitch must never act on a header it did not fully understand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input buffer ended before the fixed-size header was complete.
    Truncated {
        /// Header that was being parsed.
        what: &'static str,
        /// Bytes required by the header.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A version / magic / type field held an unsupported value.
    BadField {
        /// Header that was being parsed.
        what: &'static str,
        /// Field that failed validation.
        field: &'static str,
        /// The offending value, widened to u64 for display.
        value: u64,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Header whose checksum failed.
        what: &'static str,
        /// Checksum carried in the packet.
        got: u16,
        /// Checksum computed over the received bytes.
        want: u16,
    },
    /// A length field is inconsistent with the buffer.
    BadLength {
        /// Header that was being parsed.
        what: &'static str,
        /// Length claimed by the header.
        claimed: usize,
        /// Length actually available.
        available: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { what, need, have } => {
                write!(f, "{what}: truncated (need {need} bytes, have {have})")
            }
            CodecError::BadField { what, field, value } => {
                write!(f, "{what}: unsupported {field} value {value:#x}")
            }
            CodecError::BadChecksum { what, got, want } => {
                write!(
                    f,
                    "{what}: checksum mismatch (got {got:#06x}, want {want:#06x})"
                )
            }
            CodecError::BadLength {
                what,
                claimed,
                available,
            } => {
                write!(
                    f,
                    "{what}: length field {claimed} exceeds available {available}"
                )
            }
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_precise() {
        let e = CodecError::Truncated {
            what: "ipv4",
            need: 20,
            have: 7,
        };
        assert_eq!(e.to_string(), "ipv4: truncated (need 20 bytes, have 7)");

        let e = CodecError::BadChecksum {
            what: "ipv4",
            got: 0x1234,
            want: 0xabcd,
        };
        assert!(e.to_string().contains("0x1234"));
        assert!(e.to_string().contains("0xabcd"));

        let e = CodecError::BadField {
            what: "nezha",
            field: "magic",
            value: 0xff,
        };
        assert!(e.to_string().contains("magic"));

        let e = CodecError::BadLength {
            what: "udp",
            claimed: 100,
            available: 8,
        };
        assert!(e.to_string().contains("100"));
    }
}

//! The classic connection 5-tuple and IP protocol numbers.

use crate::addr::Ipv4Addr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// IP protocol numbers the vSwitch data plane understands.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum IpProtocol {
    /// ICMP (protocol 1). Used by the health monitor's ping polling.
    Icmp = 1,
    /// TCP (protocol 6).
    Tcp = 6,
    /// UDP (protocol 17). Also the VXLAN outer transport.
    Udp = 17,
}

impl IpProtocol {
    /// Parses a protocol number, returning `None` for anything unsupported.
    pub const fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(IpProtocol::Icmp),
            6 => Some(IpProtocol::Tcp),
            17 => Some(IpProtocol::Udp),
            _ => None,
        }
    }

    /// The wire protocol number.
    pub const fn as_u8(self) -> u8 {
        self as u8
    }
}

impl fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "icmp"),
            IpProtocol::Tcp => write!(f, "tcp"),
            IpProtocol::Udp => write!(f, "udp"),
        }
    }
}

/// A unidirectional connection 5-tuple.
///
/// Cached flows in the vSwitch fast path are keyed by `(VPC ID, 5-tuple)`;
/// Nezha's load balancer places flows on FEs with `Hash(5-tuple) % #FEs`
/// (paper §3.2.3). The tuple is *directional*: the reverse direction of a
/// session is [`FiveTuple::reversed`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4 address.
    pub dst_ip: Ipv4Addr,
    /// Source transport port (0 for ICMP).
    pub src_port: u16,
    /// Destination transport port (0 for ICMP).
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: IpProtocol,
}

impl FiveTuple {
    /// Builds a TCP 5-tuple.
    pub const fn tcp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: IpProtocol::Tcp,
        }
    }

    /// Builds a UDP 5-tuple.
    pub const fn udp(src_ip: Ipv4Addr, src_port: u16, dst_ip: Ipv4Addr, dst_port: u16) -> Self {
        FiveTuple {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            protocol: IpProtocol::Udp,
        }
    }

    /// The same session seen from the opposite direction.
    pub const fn reversed(self) -> Self {
        FiveTuple {
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }

    /// True when this tuple is the canonical orientation of its session.
    ///
    /// Canonical = the lexicographically smaller of `(self, reversed)`.
    /// Both directions of a session canonicalize to the same orientation,
    /// which is what lets a single session-table entry serve bidirectional
    /// traffic (paper §2.1).
    pub fn is_canonical(self) -> bool {
        self <= self.reversed()
    }

    /// Returns the canonical orientation of this tuple's session.
    pub fn canonical(self) -> Self {
        let r = self.reversed();
        if self <= r {
            self
        } else {
            r
        }
    }

    /// A stable 64-bit hash of the tuple used for FE selection.
    ///
    /// This is deliberately *not* `std::hash` (whose output may change
    /// between releases): Nezha's flow→FE placement must be reproducible
    /// across runs for the simulator's determinism guarantees. FNV-1a over
    /// the 13 wire bytes is cheap and well distributed for this key size.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut feed = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        };
        for b in self.src_ip.octets() {
            feed(b);
        }
        for b in self.dst_ip.octets() {
            feed(b);
        }
        for b in self.src_port.to_be_bytes() {
            feed(b);
        }
        for b in self.dst_port.to_be_bytes() {
            feed(b);
        }
        feed(self.protocol.as_u8());
        // FNV-1a's low-order bits mix poorly for short, similar keys —
        // `h % n_fes` would favour a subset of FEs. Finish with a
        // splitmix64-style avalanche so every bit of the key diffuses
        // into the low bits the modulo consumes.
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        h
    }
}

impl fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src_ip, self.src_port, self.dst_ip, self.dst_port, self.protocol
        )
    }
}

impl fmt::Debug for FiveTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            4321,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        )
    }

    #[test]
    fn reverse_is_involution() {
        assert_eq!(t().reversed().reversed(), t());
    }

    #[test]
    fn canonicalization_is_direction_agnostic() {
        assert_eq!(t().canonical(), t().reversed().canonical());
        assert!(t().canonical().is_canonical());
    }

    #[test]
    fn stable_hash_differs_by_direction() {
        // The hash is over the *directional* tuple: Nezha deliberately does
        // NOT need symmetric hashing (§3.2.3), because state lives on the BE
        // which both directions traverse.
        assert_ne!(t().stable_hash(), t().reversed().stable_hash());
    }

    #[test]
    fn stable_hash_is_stable() {
        // Pinned value: if this changes, flow→FE placement changes and every
        // recorded experiment would silently shift.
        let h1 = t().stable_hash();
        let h2 = t().stable_hash();
        assert_eq!(h1, h2);
        assert_ne!(h1, 0);
    }

    #[test]
    fn stable_hash_low_bits_are_uniform() {
        // Regression: pre-avalanche FNV-1a sent `hash % 4` of sequential
        // client tuples to only two of four buckets, starving half the
        // FEs. Check all small moduli spread reasonably.
        for m in [2u64, 3, 4, 5, 8] {
            let mut counts = vec![0u32; m as usize];
            for n in 0..400u32 {
                let t = FiveTuple::tcp(
                    Ipv4Addr::new(10, 7, 1, (n % 200) as u8 + 1),
                    10_000 + n as u16,
                    Ipv4Addr::new(10, 7, 0, 1),
                    9000,
                );
                counts[(t.stable_hash() % m) as usize] += 1;
            }
            let expect = 400 / m as u32;
            for (i, c) in counts.iter().enumerate() {
                assert!(
                    *c > expect / 2 && *c < expect * 2,
                    "mod {m} bucket {i}: {c} (expect ~{expect})"
                );
            }
        }
    }

    #[test]
    fn protocol_round_trip() {
        for p in [IpProtocol::Icmp, IpProtocol::Tcp, IpProtocol::Udp] {
            assert_eq!(IpProtocol::from_u8(p.as_u8()), Some(p));
        }
        assert_eq!(IpProtocol::from_u8(200), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(t().to_string(), "10.0.0.1:4321 -> 10.0.0.2:80 (tcp)");
    }
}

//! Packet-processing actions and pre-actions.
//!
//! The paper abstracts all NF processing as `Action = func(pkt, rules,
//! states)` (§2.1). Rule-table lookup produces **pre-actions** — preliminary
//! per-direction decisions that are not yet final for stateful NFs. The fast
//! path then computes `process_pkt(pre_actions, state)`.
//!
//! A [`PreAction`] is what one rule-table pipeline pass yields for one
//! direction of a flow. A [`PreActionPair`] holds both directions and is
//! what a cached bidirectional flow entry stores, and what Nezha's FE
//! piggybacks onto RX packets for the BE (§3.1). The final [`Action`] is
//! produced only where both pre-actions *and* state are present.

use crate::addr::{Ipv4Addr, ServerId};
use serde::{Deserialize, Serialize};

/// The accept/drop verdict portion of a decision.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Decision {
    /// Forward the packet.
    Accept,
    /// Silently discard the packet.
    Drop,
}

impl Decision {
    /// True for [`Decision::Accept`].
    pub const fn is_accept(self) -> bool {
        matches!(self, Decision::Accept)
    }
}

/// Result of one rule-table pipeline pass for one flow direction.
///
/// Encodes everything the fast path needs to forward without re-querying
/// rule tables: the preliminary verdict, routing/rewrite outputs, QoS class
/// and statistics policy, plus flags for the stateful NFs that must combine
/// this with session state before the verdict is final.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PreAction {
    /// Preliminary verdict from the ACL table. For a *stateful* ACL this is
    /// not final: the BE may override it using the first-packet direction.
    pub verdict: Decision,
    /// True when the verdict came from a stateful ACL rule and must be
    /// combined with the first-packet-direction state (paper §5.1).
    pub stateful_acl: bool,
    /// Destination server resolved via VXLAN routing + the vNIC-server map
    /// (`None` when the verdict is Drop or the destination is off-overlay).
    pub next_hop: Option<ServerId>,
    /// Overlay source rewrite for NAT (`None` = no NAT).
    pub nat_rewrite: Option<Ipv4Addr>,
    /// True when stateful decapsulation applies to this flow: the RX path
    /// must record the overlay source so TX responses can be re-encapsulated
    /// toward it (paper §5.2).
    pub stateful_decap: bool,
    /// QoS class from the meter table; `0` is best-effort.
    pub qos_class: u8,
    /// Statistics policy id from the flow-log/statistics policy table;
    /// `0` = record nothing. Non-zero policies make state initialization
    /// *rule-table-involved* (paper §3.2.2), which is what forces notify
    /// packets on the TX path.
    pub stats_policy: u8,
    /// Overlay collector receiving mirror copies of this direction's
    /// packets (`None` = not mirrored). One of the advanced-table outputs
    /// of §2.2.2.
    pub mirror_to: Option<Ipv4Addr>,
}

impl PreAction {
    /// A permissive pre-action that accepts and forwards to `next_hop`.
    pub const fn accept(next_hop: Option<ServerId>) -> Self {
        PreAction {
            verdict: Decision::Accept,
            stateful_acl: false,
            next_hop,
            nat_rewrite: None,
            stateful_decap: false,
            qos_class: 0,
            stats_policy: 0,
            mirror_to: None,
        }
    }

    /// A dropping pre-action.
    pub const fn drop() -> Self {
        PreAction {
            verdict: Decision::Drop,
            stateful_acl: false,
            next_hop: None,
            nat_rewrite: None,
            stateful_decap: false,
            qos_class: 0,
            stats_policy: 0,
            mirror_to: None,
        }
    }
}

/// Both directions' pre-actions, as stored in one bidirectional cached-flow
/// entry ("VPC ID, 5-tuple, pre-actions / 5-tuple(R), pre-actions" in the
/// paper's Fig. 1) and as piggybacked FE→BE on the RX path.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PreActionPair {
    /// Pre-action for egress (TX) packets.
    pub tx: PreAction,
    /// Pre-action for ingress (RX) packets.
    pub rx: PreAction,
}

impl PreActionPair {
    /// Selects the direction-appropriate pre-action.
    pub const fn for_direction(&self, dir: crate::flow::Direction) -> &PreAction {
        match dir {
            crate::flow::Direction::Tx => &self.tx,
            crate::flow::Direction::Rx => &self.rx,
        }
    }

    /// Symmetric accept pair forwarding TX to `tx_hop` and RX to `rx_hop`.
    pub const fn accept(tx_hop: Option<ServerId>, rx_hop: Option<ServerId>) -> Self {
        PreActionPair {
            tx: PreAction::accept(tx_hop),
            rx: PreAction::accept(rx_hop),
        }
    }
}

/// The final processing action for one packet: the output of
/// `process_pkt(pre_actions, state)` with state applied.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Action {
    /// Final verdict.
    pub verdict: Decision,
    /// Where to forward (None when dropping or delivering locally to a VM).
    pub next_hop: Option<ServerId>,
    /// Source-address rewrite applied (NAT).
    pub nat_rewrite: Option<Ipv4Addr>,
    /// Overlay destination used when re-encapsulating a TX response under
    /// stateful decap (the recorded LB address).
    pub encap_override: Option<Ipv4Addr>,
    /// QoS class used for queue selection.
    pub qos_class: u8,
    /// Overlay collector to copy the packet to (mirroring).
    pub mirror_to: Option<Ipv4Addr>,
}

impl Action {
    /// A drop action.
    pub const fn drop() -> Self {
        Action {
            verdict: Decision::Drop,
            next_hop: None,
            nat_rewrite: None,
            encap_override: None,
            qos_class: 0,
            mirror_to: None,
        }
    }

    /// Derives the final action from a direction's pre-action and, for
    /// stateful ACL, the recorded first-packet direction.
    ///
    /// This is the paper's §5.1 logic verbatim: if the rule is stateful and
    /// the session was initiated locally (first packet TX), responses are
    /// accepted even when the RX pre-action says drop; an RX-initiated flow
    /// hitting a drop pre-action stays dropped (unsolicited).
    pub fn finalize(
        pre: &PreAction,
        pkt_dir: crate::flow::Direction,
        first_dir: Option<crate::flow::Direction>,
    ) -> Self {
        let mut verdict = pre.verdict;
        if pre.stateful_acl {
            match (pkt_dir, first_dir) {
                // Response traffic to a locally-initiated session passes.
                (crate::flow::Direction::Rx, Some(crate::flow::Direction::Tx)) => {
                    verdict = Decision::Accept;
                }
                // TX responses to an externally-initiated, accepted session
                // pass as well (the RX pre-action accepted the first packet).
                (crate::flow::Direction::Tx, Some(crate::flow::Direction::Rx)) => {
                    verdict = Decision::Accept;
                }
                _ => {}
            }
        }
        Action {
            verdict,
            next_hop: if verdict.is_accept() {
                pre.next_hop
            } else {
                None
            },
            nat_rewrite: pre.nat_rewrite,
            encap_override: None,
            qos_class: pre.qos_class,
            mirror_to: if verdict.is_accept() {
                pre.mirror_to
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Direction;

    fn stateful_drop_rx() -> PreAction {
        PreAction {
            verdict: Decision::Drop,
            stateful_acl: true,
            ..PreAction::drop()
        }
    }

    #[test]
    fn stateful_acl_allows_responses_to_local_sessions() {
        // RX pre-action drops, but first packet was TX: accept (§5.1).
        let a = Action::finalize(&stateful_drop_rx(), Direction::Rx, Some(Direction::Tx));
        assert_eq!(a.verdict, Decision::Accept);
    }

    #[test]
    fn stateful_acl_drops_unsolicited() {
        // RX pre-action drops and the first packet was itself RX: drop.
        let a = Action::finalize(&stateful_drop_rx(), Direction::Rx, Some(Direction::Rx));
        assert_eq!(a.verdict, Decision::Drop);
        assert_eq!(a.next_hop, None);
        // Unknown first direction also drops.
        let a = Action::finalize(&stateful_drop_rx(), Direction::Rx, None);
        assert_eq!(a.verdict, Decision::Drop);
    }

    #[test]
    fn stateless_drop_is_final() {
        let pre = PreAction::drop();
        let a = Action::finalize(&pre, Direction::Rx, Some(Direction::Tx));
        assert_eq!(a.verdict, Decision::Drop);
    }

    #[test]
    fn accept_keeps_routing_outputs() {
        let mut pre = PreAction::accept(Some(ServerId(9)));
        pre.nat_rewrite = Some(Ipv4Addr::new(100, 64, 0, 1));
        pre.qos_class = 3;
        let a = Action::finalize(&pre, Direction::Tx, Some(Direction::Tx));
        assert_eq!(a.verdict, Decision::Accept);
        assert_eq!(a.next_hop, Some(ServerId(9)));
        assert_eq!(a.nat_rewrite, Some(Ipv4Addr::new(100, 64, 0, 1)));
        assert_eq!(a.qos_class, 3);
    }

    #[test]
    fn pair_selects_by_direction() {
        let pair = PreActionPair {
            tx: PreAction::accept(Some(ServerId(1))),
            rx: PreAction::drop(),
        };
        assert_eq!(pair.for_direction(Direction::Tx).verdict, Decision::Accept);
        assert_eq!(pair.for_direction(Direction::Rx).verdict, Decision::Drop);
    }

    #[test]
    fn tx_response_to_accepted_inbound_session_passes() {
        // First packet was RX and got accepted; the TX reply must pass even
        // if the TX pre-action is a stateful drop.
        let a = Action::finalize(&stateful_drop_rx(), Direction::Tx, Some(Direction::Rx));
        assert_eq!(a.verdict, Decision::Accept);
    }
}

//! Flow and session keys, and packet direction.

use crate::addr::VpcId;
use crate::five_tuple::FiveTuple;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Direction of a packet relative to the vNIC it belongs to.
///
/// * `Tx` (egress): sent *by* the local VM, traverses BE → FE under Nezha.
/// * `Rx` (ingress): destined *to* the local VM, traverses FE → BE.
///
/// Stateful ACL (paper §5.1) records the direction of a session's first
/// packet as its state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Direction {
    /// Egress: VM → network.
    Tx,
    /// Ingress: network → VM.
    Rx,
}

impl Direction {
    /// The opposite direction.
    pub const fn flipped(self) -> Self {
        match self {
            Direction::Tx => Direction::Rx,
            Direction::Rx => Direction::Tx,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Tx => write!(f, "TX"),
            Direction::Rx => write!(f, "RX"),
        }
    }
}

/// Key of a *unidirectional* cached flow: `(VPC ID, 5-tuple)`.
///
/// The VPC ID disambiguates tenants reusing identical private 5-tuples
/// (paper §2.1, Fig. 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Owning tenant network.
    pub vpc: VpcId,
    /// Directional 5-tuple.
    pub tuple: FiveTuple,
}

impl FlowKey {
    /// Builds a flow key.
    pub const fn new(vpc: VpcId, tuple: FiveTuple) -> Self {
        FlowKey { vpc, tuple }
    }

    /// The same session's opposite-direction flow key.
    pub const fn reversed(self) -> Self {
        FlowKey {
            vpc: self.vpc,
            tuple: self.tuple.reversed(),
        }
    }

    /// The session this flow belongs to.
    pub fn session(self) -> SessionKey {
        SessionKey {
            vpc: self.vpc,
            canonical: self.tuple.canonical(),
        }
    }
}

impl fmt::Debug for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlowKey[{} {}]", self.vpc, self.tuple)
    }
}

/// Key of a *bidirectional* session-table entry.
///
/// Both directions of a connection map to the same `SessionKey`, so session
/// state (TCP FSM, first-packet direction, statistics) lives in exactly one
/// entry — the property that lets Nezha keep a single local copy of state
/// with no cross-node synchronization (paper §3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SessionKey {
    /// Owning tenant network.
    pub vpc: VpcId,
    /// Canonical orientation of the session's 5-tuple.
    pub canonical: FiveTuple,
}

impl SessionKey {
    /// Builds the session key for any directional tuple of the session.
    pub fn of(vpc: VpcId, tuple: FiveTuple) -> Self {
        SessionKey {
            vpc,
            canonical: tuple.canonical(),
        }
    }
}

impl fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SessionKey[{} {}]", self.vpc, self.canonical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Ipv4Addr;

    fn tuple() -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(10, 0, 0, 9),
            50000,
            Ipv4Addr::new(10, 0, 1, 7),
            443,
        )
    }

    #[test]
    fn both_directions_share_one_session_key() {
        let k = FlowKey::new(VpcId(3), tuple());
        assert_eq!(k.session(), k.reversed().session());
    }

    #[test]
    fn different_vpcs_do_not_collide() {
        let a = FlowKey::new(VpcId(1), tuple());
        let b = FlowKey::new(VpcId(2), tuple());
        assert_ne!(a, b);
        assert_ne!(a.session(), b.session());
    }

    #[test]
    fn direction_flip() {
        assert_eq!(Direction::Tx.flipped(), Direction::Rx);
        assert_eq!(Direction::Rx.flipped(), Direction::Tx);
        assert_eq!(Direction::Tx.to_string(), "TX");
    }

    #[test]
    fn session_key_of_matches_flow_key_session() {
        let k = FlowKey::new(VpcId(5), tuple());
        assert_eq!(SessionKey::of(VpcId(5), tuple()), k.session());
    }
}

//! The **Nezha Service Header** — the outer header that carries processing
//! inputs between a vNIC backend (BE) and its frontends (FEs).
//!
//! Because Nezha stores rules/flows (FE) and state (BE) in different
//! places, "Nezha uses packets to carry the information from one end to
//! the other, bringing the inputs together for processing" (paper §3.2.1).
//! The paper piggybacks on an NSH-like encapsulation [RFC 8300]; we define
//! a concrete binary layout with the same roles:
//!
//! * **TX carry** (BE → FE): the session state the FE needs — first-packet
//!   direction and, under stateful decap, the recorded overlay address the
//!   FE must encapsulate toward (§5.2).
//! * **RX carry** (FE → BE): the queried pre-actions for both directions,
//!   plus information the BE needs to initialize/update state that would
//!   otherwise be lost after FE processing (e.g. the original overlay
//!   source for stateful decap), plus any rule-table-involved state such
//!   as the statistics policy (§3.2.2 — "we encapsulate the state into the
//!   outer header of the packet instead of using a separate notify packet").
//! * **Notify** (FE → BE, standalone): rule-table-involved state updates on
//!   the TX path, generated only when a cached-flow miss produced state
//!   that differs from what the packet carried (§3.2.2).
//! * **Health probe / reply**: the centralized monitor's ping polling and
//!   the BE↔FE mutual ping (§4.4, Appendix C).
//!
//! Wire layout (network byte order):
//!
//! ```text
//!  0      2      3      4        8        12      13
//!  | magic | ver  | kind | vnic   | vpc     | flags | ... optional fields |
//! ```
//!
//! Optional fields appear in a fixed order when their flag bit is set:
//! first-dir (in flags), decap address (4 B), stats policy (1 B),
//! pre-action pair (2 × 12 B).

use crate::action::{Decision, PreAction, PreActionPair};
use crate::addr::{Ipv4Addr, ServerId, VnicId, VpcId};
use crate::error::{CodecError, CodecResult};
use crate::flow::Direction;
use bytes::BufMut;
use serde::{Deserialize, Serialize};

/// Magic bytes "NZ" identifying a Nezha service header.
pub const NEZHA_MAGIC: u16 = 0x4e5a;
/// Current header version.
pub const NEZHA_VERSION: u8 = 1;

/// What role this Nezha-encapsulated packet plays.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum NezhaPayloadKind {
    /// Egress data packet BE→FE, carrying local state outward.
    TxCarry = 0,
    /// Ingress data packet FE→BE, carrying pre-actions inward.
    RxCarry = 1,
    /// Standalone notify packet FE→BE for rule-table-involved state.
    Notify = 2,
    /// Health-check probe (monitor→vSwitch or BE↔FE mutual ping).
    HealthProbe = 3,
    /// Health-check reply.
    HealthReply = 4,
}

impl NezhaPayloadKind {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(NezhaPayloadKind::TxCarry),
            1 => Some(NezhaPayloadKind::RxCarry),
            2 => Some(NezhaPayloadKind::Notify),
            3 => Some(NezhaPayloadKind::HealthProbe),
            4 => Some(NezhaPayloadKind::HealthReply),
            _ => None,
        }
    }
}

// Flag bits.
const F_HAS_FIRST_DIR: u8 = 0x01;
const F_FIRST_DIR_TX: u8 = 0x02;
const F_HAS_DECAP: u8 = 0x04;
const F_HAS_STATS_POLICY: u8 = 0x08;
const F_HAS_PRE_ACTIONS: u8 = 0x10;

/// The decoded Nezha service header.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NezhaHeader {
    /// Packet role.
    pub kind: NezhaPayloadKind,
    /// vNIC this packet belongs to (selects rule tables at the FE and the
    /// state partition at the BE).
    pub vnic: VnicId,
    /// Tenant VPC.
    pub vpc: VpcId,
    /// Carried first-packet direction (TX carry: the BE's recorded state;
    /// also echoed on RX carry so the BE can skip a state write when its
    /// state already matches).
    pub first_dir: Option<Direction>,
    /// Carried stateful-decap address. On TX carry: the state's recorded
    /// LB address the FE must encapsulate toward. On RX carry: the original
    /// overlay source the BE must record, which FE processing would
    /// otherwise destroy (§3.2.2 "rule table not involved").
    pub decap_addr: Option<Ipv4Addr>,
    /// Carried statistics policy — rule-table-involved state (§3.2.2).
    pub stats_policy: Option<u8>,
    /// Carried pre-actions (RX carry only).
    pub pre_actions: Option<PreActionPair>,
}

impl NezhaHeader {
    /// Fixed portion size in bytes.
    pub const FIXED_LEN: usize = 13;
    /// Encoded size of one [`PreAction`].
    pub const PRE_ACTION_LEN: usize = 16;
    /// Largest possible encoding (every optional field present) — the
    /// right size for a stack scratch buffer with [`encode_into`].
    ///
    /// [`encode_into`]: NezhaHeader::encode_into
    pub const MAX_WIRE_LEN: usize = Self::FIXED_LEN + 4 + 1 + 2 * Self::PRE_ACTION_LEN;

    /// A bare header of the given kind with no optional fields.
    pub const fn bare(kind: NezhaPayloadKind, vnic: VnicId, vpc: VpcId) -> Self {
        NezhaHeader {
            kind,
            vnic,
            vpc,
            first_dir: None,
            decap_addr: None,
            stats_policy: None,
            pre_actions: None,
        }
    }

    /// Encoded size of this header with its optional fields.
    pub fn wire_len(&self) -> usize {
        let mut n = Self::FIXED_LEN;
        if self.decap_addr.is_some() {
            n += 4;
        }
        if self.stats_policy.is_some() {
            n += 1;
        }
        if self.pre_actions.is_some() {
            n += 2 * Self::PRE_ACTION_LEN;
        }
        n
    }

    /// Serializes the header.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(NEZHA_MAGIC);
        buf.put_u8(NEZHA_VERSION);
        buf.put_u8(self.kind as u8);
        buf.put_u32(self.vnic.0);
        buf.put_u32(self.vpc.0);
        let mut flags = 0u8;
        if let Some(d) = self.first_dir {
            flags |= F_HAS_FIRST_DIR;
            if d == Direction::Tx {
                flags |= F_FIRST_DIR_TX;
            }
        }
        if self.decap_addr.is_some() {
            flags |= F_HAS_DECAP;
        }
        if self.stats_policy.is_some() {
            flags |= F_HAS_STATS_POLICY;
        }
        if self.pre_actions.is_some() {
            flags |= F_HAS_PRE_ACTIONS;
        }
        buf.put_u8(flags);
        if let Some(a) = self.decap_addr {
            buf.put_slice(&a.octets());
        }
        if let Some(p) = self.stats_policy {
            buf.put_u8(p);
        }
        if let Some(pp) = &self.pre_actions {
            encode_pre_action(&pp.tx, buf);
            encode_pre_action(&pp.rx, buf);
        }
    }

    /// Serializes the header into a caller-provided slice without any
    /// allocation or `BufMut` indirection, returning the bytes written.
    ///
    /// `buf` must hold at least [`wire_len`](NezhaHeader::wire_len) bytes;
    /// a `[u8; NezhaHeader::MAX_WIRE_LEN]` on the stack always fits.
    pub fn encode_into(&self, buf: &mut [u8]) -> usize {
        buf[0..2].copy_from_slice(&NEZHA_MAGIC.to_be_bytes());
        buf[2] = NEZHA_VERSION;
        buf[3] = self.kind as u8;
        buf[4..8].copy_from_slice(&self.vnic.0.to_be_bytes());
        buf[8..12].copy_from_slice(&self.vpc.0.to_be_bytes());
        let mut flags = 0u8;
        if let Some(d) = self.first_dir {
            flags |= F_HAS_FIRST_DIR;
            if d == Direction::Tx {
                flags |= F_FIRST_DIR_TX;
            }
        }
        if self.decap_addr.is_some() {
            flags |= F_HAS_DECAP;
        }
        if self.stats_policy.is_some() {
            flags |= F_HAS_STATS_POLICY;
        }
        if self.pre_actions.is_some() {
            flags |= F_HAS_PRE_ACTIONS;
        }
        buf[12] = flags;
        let mut off = Self::FIXED_LEN;
        if let Some(a) = self.decap_addr {
            buf[off..off + 4].copy_from_slice(&a.octets());
            off += 4;
        }
        if let Some(p) = self.stats_policy {
            buf[off] = p;
            off += 1;
        }
        if let Some(pp) = &self.pre_actions {
            off += encode_pre_action_into(&pp.tx, &mut buf[off..]);
            off += encode_pre_action_into(&pp.rx, &mut buf[off..]);
        }
        off
    }

    /// Parses and validates a header, returning it and the bytes consumed.
    pub fn decode(data: &[u8]) -> CodecResult<(Self, usize)> {
        let view = NshView::parse(data)?;
        let consumed = view.wire_len();
        // nezha-lint: allow(D10): `decode` is the owned-copy convenience variant; the zero-copy hot path is `NshView::parse`
        Ok((view.to_owned(), consumed))
    }
}

/// A zero-copy, borrowed view of an encoded Nezha service header.
///
/// [`parse`](NshView::parse) validates the frame **once** — magic,
/// version, kind, and that every flagged optional field is in bounds —
/// and stores only the borrowed bytes plus field offsets. Accessors then
/// read straight out of the wire bytes with no further checks and no
/// owned [`NezhaHeader`] materialized; callers that need just the
/// demux fields (kind / vNIC / VPC) never pay for decoding pre-actions.
#[derive(Clone, Copy, Debug)]
pub struct NshView<'a> {
    data: &'a [u8],
    flags: u8,
    /// Offset of the decap address (meaningful only when flagged).
    decap_off: usize,
    /// Offset of the stats policy (meaningful only when flagged).
    stats_off: usize,
    /// Offset of the pre-action pair (meaningful only when flagged).
    pre_off: usize,
    len: usize,
}

impl<'a> NshView<'a> {
    /// Validates `data` as a Nezha header and returns a borrowed view.
    pub fn parse(data: &'a [u8]) -> CodecResult<NshView<'a>> {
        if data.len() < NezhaHeader::FIXED_LEN {
            return Err(CodecError::Truncated {
                what: "nezha",
                need: NezhaHeader::FIXED_LEN,
                have: data.len(),
            });
        }
        let magic = u16::from_be_bytes([data[0], data[1]]);
        if magic != NEZHA_MAGIC {
            return Err(CodecError::BadField {
                what: "nezha",
                field: "magic",
                value: magic as u64,
            });
        }
        if data[2] != NEZHA_VERSION {
            return Err(CodecError::BadField {
                what: "nezha",
                field: "version",
                value: data[2] as u64,
            });
        }
        if NezhaPayloadKind::from_u8(data[3]).is_none() {
            return Err(CodecError::BadField {
                what: "nezha",
                field: "kind",
                value: data[3] as u64,
            });
        }
        let flags = data[12];
        let mut off = NezhaHeader::FIXED_LEN;
        let decap_off = off;
        if flags & F_HAS_DECAP != 0 {
            off += 4;
        }
        let stats_off = off;
        if flags & F_HAS_STATS_POLICY != 0 {
            off += 1;
        }
        let pre_off = off;
        if flags & F_HAS_PRE_ACTIONS != 0 {
            off += 2 * NezhaHeader::PRE_ACTION_LEN;
        }
        if data.len() < off {
            return Err(CodecError::Truncated {
                what: "nezha",
                need: off,
                have: data.len(),
            });
        }
        Ok(NshView {
            data,
            flags,
            decap_off,
            stats_off,
            pre_off,
            len: off,
        })
    }

    /// Bytes this header occupies on the wire.
    #[inline]
    pub fn wire_len(&self) -> usize {
        self.len
    }

    /// Packet role.
    #[inline]
    pub fn kind(&self) -> NezhaPayloadKind {
        // Validated by `parse`.
        NezhaPayloadKind::from_u8(self.data[3]).expect("kind validated at parse")
    }

    /// vNIC id.
    #[inline]
    pub fn vnic(&self) -> VnicId {
        let d = self.data;
        VnicId(u32::from_be_bytes([d[4], d[5], d[6], d[7]]))
    }

    /// Tenant VPC.
    #[inline]
    pub fn vpc(&self) -> VpcId {
        let d = self.data;
        VpcId(u32::from_be_bytes([d[8], d[9], d[10], d[11]]))
    }

    /// Carried first-packet direction, when present.
    #[inline]
    pub fn first_dir(&self) -> Option<Direction> {
        if self.flags & F_HAS_FIRST_DIR != 0 {
            Some(if self.flags & F_FIRST_DIR_TX != 0 {
                Direction::Tx
            } else {
                Direction::Rx
            })
        } else {
            None
        }
    }

    /// Carried stateful-decap address, when present.
    #[inline]
    pub fn decap_addr(&self) -> Option<Ipv4Addr> {
        if self.flags & F_HAS_DECAP != 0 {
            let d = &self.data[self.decap_off..];
            Some(Ipv4Addr::from_octets([d[0], d[1], d[2], d[3]]))
        } else {
            None
        }
    }

    /// Carried statistics policy, when present.
    #[inline]
    pub fn stats_policy(&self) -> Option<u8> {
        if self.flags & F_HAS_STATS_POLICY != 0 {
            Some(self.data[self.stats_off])
        } else {
            None
        }
    }

    /// Decodes the carried pre-action pair, when present. This is the one
    /// accessor that does per-field work; it runs only when asked.
    pub fn pre_actions(&self) -> Option<PreActionPair> {
        if self.flags & F_HAS_PRE_ACTIONS != 0 {
            let off = self.pre_off;
            let tx = decode_pre_action(&self.data[off..off + NezhaHeader::PRE_ACTION_LEN])
                .expect("bounds validated at parse");
            let rx = decode_pre_action(
                &self.data
                    [off + NezhaHeader::PRE_ACTION_LEN..off + 2 * NezhaHeader::PRE_ACTION_LEN],
            )
            .expect("bounds validated at parse");
            Some(PreActionPair { tx, rx })
        } else {
            None
        }
    }

    /// Materializes an owned [`NezhaHeader`] from the view.
    pub fn to_owned(&self) -> NezhaHeader {
        NezhaHeader {
            kind: self.kind(),
            vnic: self.vnic(),
            vpc: self.vpc(),
            first_dir: self.first_dir(),
            decap_addr: self.decap_addr(),
            stats_policy: self.stats_policy(),
            pre_actions: self.pre_actions(),
        }
    }
}

// Per-pre-action flag bits.
const PA_ACCEPT: u8 = 0x01;
const PA_STATEFUL_ACL: u8 = 0x02;
const PA_HAS_NEXT_HOP: u8 = 0x04;
const PA_HAS_NAT: u8 = 0x08;
const PA_STATEFUL_DECAP: u8 = 0x10;
const PA_HAS_MIRROR: u8 = 0x20;

fn encode_pre_action<B: BufMut>(p: &PreAction, buf: &mut B) {
    let mut flags = 0u8;
    if p.verdict.is_accept() {
        flags |= PA_ACCEPT;
    }
    if p.stateful_acl {
        flags |= PA_STATEFUL_ACL;
    }
    if p.next_hop.is_some() {
        flags |= PA_HAS_NEXT_HOP;
    }
    if p.nat_rewrite.is_some() {
        flags |= PA_HAS_NAT;
    }
    if p.stateful_decap {
        flags |= PA_STATEFUL_DECAP;
    }
    if p.mirror_to.is_some() {
        flags |= PA_HAS_MIRROR;
    }
    buf.put_u8(flags);
    buf.put_u32(p.next_hop.map_or(0, |s| s.0));
    buf.put_u32(p.nat_rewrite.map_or(0, |a| a.0));
    buf.put_u8(p.qos_class);
    buf.put_u8(p.stats_policy);
    buf.put_u32(p.mirror_to.map_or(0, |a| a.0));
    buf.put_u8(0); // pad to 16
}

/// Slice-target twin of [`encode_pre_action`]; returns bytes written.
fn encode_pre_action_into(p: &PreAction, buf: &mut [u8]) -> usize {
    let mut flags = 0u8;
    if p.verdict.is_accept() {
        flags |= PA_ACCEPT;
    }
    if p.stateful_acl {
        flags |= PA_STATEFUL_ACL;
    }
    if p.next_hop.is_some() {
        flags |= PA_HAS_NEXT_HOP;
    }
    if p.nat_rewrite.is_some() {
        flags |= PA_HAS_NAT;
    }
    if p.stateful_decap {
        flags |= PA_STATEFUL_DECAP;
    }
    if p.mirror_to.is_some() {
        flags |= PA_HAS_MIRROR;
    }
    buf[0] = flags;
    buf[1..5].copy_from_slice(&p.next_hop.map_or(0, |s| s.0).to_be_bytes());
    buf[5..9].copy_from_slice(&p.nat_rewrite.map_or(0, |a| a.0).to_be_bytes());
    buf[9] = p.qos_class;
    buf[10] = p.stats_policy;
    buf[11..15].copy_from_slice(&p.mirror_to.map_or(0, |a| a.0).to_be_bytes());
    buf[15] = 0; // pad to 16
    NezhaHeader::PRE_ACTION_LEN
}

fn decode_pre_action(data: &[u8]) -> CodecResult<PreAction> {
    debug_assert!(data.len() >= NezhaHeader::PRE_ACTION_LEN);
    let flags = data[0];
    let next_hop_raw = u32::from_be_bytes([data[1], data[2], data[3], data[4]]);
    let nat_raw = u32::from_be_bytes([data[5], data[6], data[7], data[8]]);
    let mirror_raw = u32::from_be_bytes([data[11], data[12], data[13], data[14]]);
    Ok(PreAction {
        verdict: if flags & PA_ACCEPT != 0 {
            Decision::Accept
        } else {
            Decision::Drop
        },
        stateful_acl: flags & PA_STATEFUL_ACL != 0,
        next_hop: (flags & PA_HAS_NEXT_HOP != 0).then_some(ServerId(next_hop_raw)),
        nat_rewrite: (flags & PA_HAS_NAT != 0).then_some(Ipv4Addr(nat_raw)),
        stateful_decap: flags & PA_STATEFUL_DECAP != 0,
        qos_class: data[9],
        stats_policy: data[10],
        mirror_to: (flags & PA_HAS_MIRROR != 0).then_some(Ipv4Addr(mirror_raw)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn full_header() -> NezhaHeader {
        NezhaHeader {
            kind: NezhaPayloadKind::RxCarry,
            vnic: VnicId(42),
            vpc: VpcId(7),
            first_dir: Some(Direction::Tx),
            decap_addr: Some(Ipv4Addr::new(100, 64, 3, 4)),
            stats_policy: Some(5),
            pre_actions: Some(PreActionPair {
                tx: PreAction {
                    verdict: Decision::Accept,
                    stateful_acl: true,
                    next_hop: Some(ServerId(12)),
                    nat_rewrite: Some(Ipv4Addr::new(100, 64, 0, 9)),
                    stateful_decap: true,
                    qos_class: 2,
                    stats_policy: 5,
                    mirror_to: Some(Ipv4Addr::new(172, 16, 9, 9)),
                },
                rx: PreAction::drop(),
            }),
        }
    }

    #[test]
    fn full_round_trip() {
        let h = full_header();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), h.wire_len());
        let (d, n) = NezhaHeader::decode(&buf).unwrap();
        assert_eq!(d, h);
        assert_eq!(n, h.wire_len());
    }

    #[test]
    fn bare_round_trip_every_kind() {
        for kind in [
            NezhaPayloadKind::TxCarry,
            NezhaPayloadKind::RxCarry,
            NezhaPayloadKind::Notify,
            NezhaPayloadKind::HealthProbe,
            NezhaPayloadKind::HealthReply,
        ] {
            let h = NezhaHeader::bare(kind, VnicId(1), VpcId(2));
            let mut buf = BytesMut::new();
            h.encode(&mut buf);
            assert_eq!(buf.len(), NezhaHeader::FIXED_LEN);
            let (d, _) = NezhaHeader::decode(&buf).unwrap();
            assert_eq!(d, h);
        }
    }

    #[test]
    fn first_dir_both_values_round_trip() {
        for dir in [Direction::Tx, Direction::Rx] {
            let mut h = NezhaHeader::bare(NezhaPayloadKind::TxCarry, VnicId(1), VpcId(1));
            h.first_dir = Some(dir);
            let mut buf = BytesMut::new();
            h.encode(&mut buf);
            let (d, _) = NezhaHeader::decode(&buf).unwrap();
            assert_eq!(d.first_dir, Some(dir));
        }
    }

    #[test]
    fn rejects_bad_magic_version_kind() {
        let h = NezhaHeader::bare(NezhaPayloadKind::Notify, VnicId(1), VpcId(1));
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        let mut raw = buf.to_vec();

        raw[0] = 0;
        assert!(matches!(
            NezhaHeader::decode(&raw),
            Err(CodecError::BadField { field: "magic", .. })
        ));
        raw[0] = (NEZHA_MAGIC >> 8) as u8;

        raw[2] = 99;
        assert!(matches!(
            NezhaHeader::decode(&raw),
            Err(CodecError::BadField {
                field: "version",
                ..
            })
        ));
        raw[2] = NEZHA_VERSION;

        raw[3] = 200;
        assert!(matches!(
            NezhaHeader::decode(&raw),
            Err(CodecError::BadField { field: "kind", .. })
        ));
    }

    #[test]
    fn truncated_optional_fields_rejected() {
        let h = full_header();
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        // Cut in the middle of the pre-action block.
        let cut = &buf[..NezhaHeader::FIXED_LEN + 4 + 1 + 3];
        assert!(matches!(
            NezhaHeader::decode(cut),
            Err(CodecError::Truncated { what: "nezha", .. })
        ));
    }

    #[test]
    fn encode_into_matches_bufmut_encode() {
        for h in [
            full_header(),
            NezhaHeader::bare(NezhaPayloadKind::Notify, VnicId(9), VpcId(3)),
        ] {
            let mut buf = BytesMut::new();
            h.encode(&mut buf);
            let mut arr = [0u8; NezhaHeader::MAX_WIRE_LEN];
            let n = h.encode_into(&mut arr);
            assert_eq!(n, h.wire_len());
            assert_eq!(&arr[..n], &buf[..], "byte-identical encodings");
        }
    }

    #[test]
    fn view_accessors_match_owned_decode() {
        let h = full_header();
        let mut arr = [0u8; NezhaHeader::MAX_WIRE_LEN];
        let n = h.encode_into(&mut arr);
        let v = NshView::parse(&arr[..n]).unwrap();
        assert_eq!(v.wire_len(), n);
        assert_eq!(v.kind(), h.kind);
        assert_eq!(v.vnic(), h.vnic);
        assert_eq!(v.vpc(), h.vpc);
        assert_eq!(v.first_dir(), h.first_dir);
        assert_eq!(v.decap_addr(), h.decap_addr);
        assert_eq!(v.stats_policy(), h.stats_policy);
        assert_eq!(v.pre_actions(), h.pre_actions);
        assert_eq!(v.to_owned(), h);
    }

    #[test]
    fn view_rejects_truncated_flagged_fields() {
        let h = full_header();
        let mut arr = [0u8; NezhaHeader::MAX_WIRE_LEN];
        let n = h.encode_into(&mut arr);
        // Every length short of the full frame must fail closed, never
        // expose out-of-bounds accessors.
        for cut in NezhaHeader::FIXED_LEN..n {
            assert!(
                NshView::parse(&arr[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        assert!(NshView::parse(&arr[..n]).is_ok());
    }

    #[test]
    fn wire_len_matches_flag_combinations() {
        let mut h = NezhaHeader::bare(NezhaPayloadKind::TxCarry, VnicId(0), VpcId(0));
        assert_eq!(h.wire_len(), 13);
        h.first_dir = Some(Direction::Rx); // in flags, no extra bytes
        assert_eq!(h.wire_len(), 13);
        h.decap_addr = Some(Ipv4Addr(1));
        assert_eq!(h.wire_len(), 17);
        h.stats_policy = Some(1);
        assert_eq!(h.wire_len(), 18);
        h.pre_actions = Some(PreActionPair::accept(None, None));
        assert_eq!(h.wire_len(), 18 + 32);
    }
}

//! The simulated packet.
//!
//! The simulator moves structured [`Packet`] values instead of raw byte
//! buffers — resource models charge for the bytes a packet *would* occupy
//! on the wire ([`Packet::wire_len`]), while the header codecs in
//! [`crate::headers`] and [`crate::nsh`] are exercised by the full-packet
//! [`Packet::encode_wire`] / [`Packet::decode_wire`] pair used in tests,
//! benches, and anywhere byte-level fidelity matters.

use crate::addr::{Ipv4Addr, ServerId, VnicId, VpcId};
use crate::error::{CodecError, CodecResult};
use crate::five_tuple::{FiveTuple, IpProtocol};
use crate::flow::{Direction, FlowKey};
use crate::headers::{
    EthernetHeader, Ipv4Header, TcpFlags, TcpHeader, UdpHeader, VxlanHeader, VXLAN_UDP_PORT,
};
use crate::nsh::{NezhaHeader, NezhaPayloadKind};
use bytes::BytesMut;
use serde::{Deserialize, Serialize};

/// High-level classification of a simulated packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PacketKind {
    /// A tenant overlay data packet.
    Data,
    /// A Nezha-encapsulated packet (data carry, notify, or health).
    Nezha,
}

/// A packet in flight in the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Packet {
    /// Monotonic trace id assigned by the generator, for loss accounting.
    pub trace: u64,
    /// Classification.
    pub kind: PacketKind,
    /// Owning tenant network.
    pub vpc: VpcId,
    /// The vNIC this packet belongs to (the offloadable unit).
    pub vnic: VnicId,
    /// Overlay 5-tuple as transmitted (directional).
    pub tuple: FiveTuple,
    /// Direction relative to `vnic`'s VM.
    pub dir: Direction,
    /// TCP flags when `tuple.protocol` is TCP.
    pub tcp_flags: TcpFlags,
    /// Application payload length in bytes.
    pub payload_len: u32,
    /// Underlay source server (filled once the packet is on the fabric).
    pub outer_src: Option<ServerId>,
    /// Underlay destination server.
    pub outer_dst: Option<ServerId>,
    /// Overlay encapsulation source carried on RX packets arriving from a
    /// middlebox (e.g. the LB address that stateful decap must record).
    pub overlay_encap_src: Option<Ipv4Addr>,
    /// Nezha service header, present between BE and FE.
    pub nezha: Option<NezhaHeader>,
    /// Raw causal span id of the last profiler span recorded for this
    /// packet (`0` = none). Simulation-only metadata: it lets the
    /// profiler stitch one packet's spans into a single tree across the
    /// BE↔FE hop; it occupies no wire bytes and is not serialized.
    pub prof_span: u64,
}

impl Packet {
    /// Builds a TX (egress) data packet from the local VM.
    pub fn tx_data(
        trace: u64,
        vpc: VpcId,
        vnic: VnicId,
        tuple: FiveTuple,
        tcp_flags: TcpFlags,
        payload_len: u32,
    ) -> Self {
        Packet {
            trace,
            kind: PacketKind::Data,
            vpc,
            vnic,
            tuple,
            dir: Direction::Tx,
            tcp_flags,
            payload_len,
            outer_src: None,
            outer_dst: None,
            overlay_encap_src: None,
            nezha: None,
            prof_span: 0,
        }
    }

    /// Builds an RX (ingress) data packet destined to the local VM.
    pub fn rx_data(
        trace: u64,
        vpc: VpcId,
        vnic: VnicId,
        tuple: FiveTuple,
        tcp_flags: TcpFlags,
        payload_len: u32,
    ) -> Self {
        Packet {
            trace,
            kind: PacketKind::Data,
            vpc,
            vnic,
            tuple,
            dir: Direction::Rx,
            tcp_flags,
            payload_len,
            outer_src: None,
            outer_dst: None,
            overlay_encap_src: None,
            nezha: None,
            prof_span: 0,
        }
    }

    /// The directional cached-flow key for this packet.
    pub fn flow_key(&self) -> FlowKey {
        FlowKey::new(self.vpc, self.tuple)
    }

    /// True for health probe/reply packets.
    pub fn is_health(&self) -> bool {
        matches!(
            self.nezha.map(|n| n.kind),
            Some(NezhaPayloadKind::HealthProbe) | Some(NezhaPayloadKind::HealthReply)
        )
    }

    /// True for standalone notify packets (no tenant payload).
    pub fn is_notify(&self) -> bool {
        matches!(self.nezha.map(|n| n.kind), Some(NezhaPayloadKind::Notify))
    }

    /// Attaches a Nezha header, marking the packet kind accordingly.
    pub fn with_nezha(mut self, nsh: NezhaHeader) -> Self {
        self.nezha = Some(nsh);
        self.kind = PacketKind::Nezha;
        self
    }

    /// Removes the Nezha header (BE/FE terminating the carry hop).
    pub fn strip_nezha(mut self) -> Self {
        self.nezha = None;
        self.kind = PacketKind::Data;
        self
    }

    /// Bytes this packet occupies on the underlay wire.
    ///
    /// Inner frame: Ethernet + IPv4 + L4 + payload. When on the fabric
    /// (`outer_dst` set) add the VXLAN underlay encapsulation: outer
    /// Ethernet + IPv4 + UDP + VXLAN. A Nezha header adds its own length
    /// on top — this is the "slight increase in bandwidth" the paper
    /// accepts for in-packet transmission.
    pub fn wire_len(&self) -> usize {
        let l4 = match self.tuple.protocol {
            IpProtocol::Tcp => TcpHeader::WIRE_LEN,
            IpProtocol::Udp => UdpHeader::WIRE_LEN,
            IpProtocol::Icmp => 8,
        };
        let mut n =
            EthernetHeader::WIRE_LEN + Ipv4Header::WIRE_LEN + l4 + self.payload_len as usize;
        if self.outer_dst.is_some() {
            n += EthernetHeader::WIRE_LEN
                + Ipv4Header::WIRE_LEN
                + UdpHeader::WIRE_LEN
                + VxlanHeader::WIRE_LEN;
        }
        if let Some(nsh) = &self.nezha {
            n += nsh.wire_len();
        }
        n
    }

    /// Serializes the packet to its full wire representation.
    ///
    /// Layout when on the fabric: `outer Eth | outer IPv4 | UDP(4789) |
    /// VXLAN | [NSH] | inner Eth | inner IPv4 | inner L4 | payload-len
    /// zeros`. Off-fabric (local hop) packets serialize just the inner
    /// frame (with optional NSH prefix — used in unit tests only).
    pub fn encode_wire(&self) -> BytesMut {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        if let (Some(src), Some(dst)) = (self.outer_src, self.outer_dst) {
            let outer_eth = EthernetHeader::ipv4(
                crate::MacAddr::from_id(src.0),
                crate::MacAddr::from_id(dst.0),
            );
            outer_eth.encode(&mut buf);
            // Synthetic underlay addresses derived from server ids.
            let outer_sip = Ipv4Addr(0x0a00_0000 | src.0);
            let outer_dip = Ipv4Addr(0x0a00_0000 | dst.0);
            let nsh_len = self.nezha.map_or(0, |n| n.wire_len());
            let inner_len = self.inner_wire_len();
            let udp_payload = VxlanHeader::WIRE_LEN + nsh_len + inner_len;
            let outer_ip = Ipv4Header::new(
                outer_sip,
                outer_dip,
                IpProtocol::Udp,
                UdpHeader::WIRE_LEN + udp_payload,
            );
            outer_ip.encode(&mut buf);
            UdpHeader::new(49152, VXLAN_UDP_PORT, udp_payload).encode(&mut buf);
            VxlanHeader { vni: self.vpc.0 }.encode(&mut buf);
        }
        if let Some(nsh) = &self.nezha {
            nsh.encode(&mut buf);
        }
        self.encode_inner(&mut buf);
        buf
    }

    fn inner_wire_len(&self) -> usize {
        let l4 = match self.tuple.protocol {
            IpProtocol::Tcp => TcpHeader::WIRE_LEN,
            IpProtocol::Udp => UdpHeader::WIRE_LEN,
            IpProtocol::Icmp => 8,
        };
        EthernetHeader::WIRE_LEN + Ipv4Header::WIRE_LEN + l4 + self.payload_len as usize
    }

    fn encode_inner(&self, buf: &mut BytesMut) {
        let eth = EthernetHeader::ipv4(
            crate::MacAddr::from_id(self.vnic.0),
            crate::MacAddr::from_id(self.vnic.0 ^ 0xffff),
        );
        eth.encode(buf);
        let l4_len = match self.tuple.protocol {
            IpProtocol::Tcp => TcpHeader::WIRE_LEN,
            IpProtocol::Udp => UdpHeader::WIRE_LEN,
            IpProtocol::Icmp => 8,
        };
        let ip = Ipv4Header::new(
            self.tuple.src_ip,
            self.tuple.dst_ip,
            self.tuple.protocol,
            l4_len + self.payload_len as usize,
        );
        ip.encode(buf);
        match self.tuple.protocol {
            IpProtocol::Tcp => {
                TcpHeader {
                    src_port: self.tuple.src_port,
                    dst_port: self.tuple.dst_port,
                    seq: self.trace as u32,
                    ack: 0,
                    flags: self.tcp_flags,
                    window: 65535,
                }
                .encode(buf, self.tuple.src_ip, self.tuple.dst_ip);
            }
            IpProtocol::Udp => {
                UdpHeader::new(
                    self.tuple.src_port,
                    self.tuple.dst_port,
                    self.payload_len as usize,
                )
                .encode(buf);
            }
            IpProtocol::Icmp => {
                // type 8 (echo), code 0, checksum over 8 zero-padded bytes.
                let mut icmp = [0u8; 8];
                icmp[0] = 8;
                let csum = crate::headers::internet_checksum(&icmp);
                icmp[2..4].copy_from_slice(&csum.to_be_bytes());
                buf.extend_from_slice(&icmp);
            }
        }
        buf.resize(buf.len() + self.payload_len as usize, 0);
    }

    /// Parses a fabric-encapsulated wire packet produced by
    /// [`Packet::encode_wire`] back into structured form.
    ///
    /// Only fabric packets (with outer encapsulation) are decodable: the
    /// outer headers carry the server ids and VNI needed to reconstruct
    /// the metadata. Fields that exist only in simulation (`dir`, `vnic`,
    /// `overlay_encap_src`) are taken from the NSH when present, otherwise
    /// defaulted; `trace` is recovered from the TCP sequence number.
    pub fn decode_wire(data: &[u8]) -> CodecResult<Packet> {
        let mut off = 0;
        let (_outer_eth, n) = EthernetHeader::decode(&data[off..])?;
        off += n;
        let (outer_ip, n) = Ipv4Header::decode(&data[off..])?;
        off += n;
        let (udp, n) = UdpHeader::decode(&data[off..])?;
        off += n;
        if udp.dst_port != VXLAN_UDP_PORT {
            return Err(CodecError::BadField {
                what: "packet",
                field: "vxlan_port",
                value: udp.dst_port as u64,
            });
        }
        let (vxlan, n) = VxlanHeader::decode(&data[off..])?;
        off += n;
        let nezha = match NezhaHeader::decode(&data[off..]) {
            Ok((h, n)) => {
                off += n;
                Some(h)
            }
            Err(CodecError::BadField { field: "magic", .. }) => None,
            Err(e) => return Err(e),
        };
        let (_inner_eth, n) = EthernetHeader::decode(&data[off..])?;
        off += n;
        let (inner_ip, n) = Ipv4Header::decode(&data[off..])?;
        off += n;
        let tuple = crate::headers::five_tuple_of(&inner_ip, &data[off..])?;
        let mut trace = 0u64;
        let mut tcp_flags = TcpFlags::empty();
        if tuple.protocol == IpProtocol::Tcp {
            let (tcp, _) = TcpHeader::decode(&data[off..], inner_ip.src, inner_ip.dst)?;
            trace = tcp.seq as u64;
            tcp_flags = tcp.flags;
        }
        let l4_len = match tuple.protocol {
            IpProtocol::Tcp => TcpHeader::WIRE_LEN,
            IpProtocol::Udp => UdpHeader::WIRE_LEN,
            IpProtocol::Icmp => 8,
        };
        let payload_len = (inner_ip.total_len as usize)
            .checked_sub(Ipv4Header::WIRE_LEN + l4_len)
            .ok_or(CodecError::BadLength {
                what: "packet",
                claimed: inner_ip.total_len as usize,
                available: data.len(),
            })? as u32;
        Ok(Packet {
            trace,
            kind: if nezha.is_some() {
                PacketKind::Nezha
            } else {
                PacketKind::Data
            },
            vpc: VpcId(vxlan.vni),
            vnic: nezha.map_or(VnicId(0), |n| n.vnic),
            tuple,
            dir: nezha.and_then(|n| n.first_dir).unwrap_or(Direction::Tx),
            tcp_flags,
            payload_len,
            outer_src: Some(ServerId(outer_ip.src.0 & 0x00ff_ffff)),
            outer_dst: Some(ServerId(outer_ip.dst.0 & 0x00ff_ffff)),
            overlay_encap_src: None,
            nezha,
            prof_span: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsh::NezhaPayloadKind;

    fn tuple() -> FiveTuple {
        FiveTuple::tcp(
            Ipv4Addr::new(192, 168, 1, 10),
            55000,
            Ipv4Addr::new(192, 168, 2, 20),
            443,
        )
    }

    #[test]
    fn wire_len_accounts_for_encap_layers() {
        let mut p = Packet::tx_data(1, VpcId(1), VnicId(1), tuple(), TcpFlags::SYN, 100);
        let bare = p.wire_len();
        assert_eq!(bare, 14 + 20 + 20 + 100);
        p.outer_src = Some(ServerId(1));
        p.outer_dst = Some(ServerId(2));
        let on_fabric = p.wire_len();
        assert_eq!(on_fabric, bare + 14 + 20 + 8 + 8);
        let nsh = NezhaHeader::bare(NezhaPayloadKind::TxCarry, VnicId(1), VpcId(1));
        let with_nsh = p.with_nezha(nsh).wire_len();
        assert_eq!(with_nsh, on_fabric + nsh.wire_len());
    }

    #[test]
    fn encode_length_matches_wire_len() {
        let mut p = Packet::tx_data(7, VpcId(3), VnicId(9), tuple(), TcpFlags::SYN, 64);
        p.outer_src = Some(ServerId(4));
        p.outer_dst = Some(ServerId(5));
        let p = p.with_nezha(NezhaHeader::bare(
            NezhaPayloadKind::TxCarry,
            VnicId(9),
            VpcId(3),
        ));
        assert_eq!(p.encode_wire().len(), p.wire_len());
    }

    #[test]
    fn fabric_round_trip_with_nezha() {
        let mut p = Packet::tx_data(1234, VpcId(77), VnicId(5), tuple(), TcpFlags::SYN, 32);
        p.outer_src = Some(ServerId(10));
        p.outer_dst = Some(ServerId(20));
        let mut nsh = NezhaHeader::bare(NezhaPayloadKind::TxCarry, VnicId(5), VpcId(77));
        nsh.first_dir = Some(Direction::Tx);
        let p = p.with_nezha(nsh);

        let wire = p.encode_wire();
        let d = Packet::decode_wire(&wire).unwrap();
        assert_eq!(d.vpc, VpcId(77));
        assert_eq!(d.vnic, VnicId(5));
        assert_eq!(d.tuple, tuple());
        assert_eq!(d.trace, 1234);
        assert_eq!(d.tcp_flags, TcpFlags::SYN);
        assert_eq!(d.payload_len, 32);
        assert_eq!(d.outer_src, Some(ServerId(10)));
        assert_eq!(d.outer_dst, Some(ServerId(20)));
        assert_eq!(d.nezha, Some(nsh));
    }

    #[test]
    fn fabric_round_trip_plain_data() {
        let mut p = Packet::rx_data(9, VpcId(2), VnicId(0), tuple(), TcpFlags::ACK, 1400);
        p.outer_src = Some(ServerId(3));
        p.outer_dst = Some(ServerId(4));
        let wire = p.encode_wire();
        let d = Packet::decode_wire(&wire).unwrap();
        assert_eq!(d.kind, PacketKind::Data);
        assert_eq!(d.nezha, None);
        assert_eq!(d.payload_len, 1400);
    }

    #[test]
    fn udp_and_icmp_encode_without_panic() {
        let u = FiveTuple::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            53,
            Ipv4Addr::new(2, 2, 2, 2),
            5353,
        );
        let mut p = Packet::tx_data(1, VpcId(1), VnicId(1), u, TcpFlags::empty(), 100);
        p.outer_src = Some(ServerId(1));
        p.outer_dst = Some(ServerId(2));
        assert_eq!(p.encode_wire().len(), p.wire_len());

        let i = FiveTuple {
            src_ip: Ipv4Addr::new(1, 1, 1, 1),
            dst_ip: Ipv4Addr::new(2, 2, 2, 2),
            src_port: 0,
            dst_port: 0,
            protocol: IpProtocol::Icmp,
        };
        let mut p = Packet::tx_data(1, VpcId(1), VnicId(1), i, TcpFlags::empty(), 0);
        p.outer_src = Some(ServerId(1));
        p.outer_dst = Some(ServerId(2));
        assert_eq!(p.encode_wire().len(), p.wire_len());
    }

    #[test]
    fn helpers_classify_kinds() {
        let p = Packet::tx_data(1, VpcId(1), VnicId(1), tuple(), TcpFlags::SYN, 0);
        assert!(!p.is_health());
        assert!(!p.is_notify());
        let probe = p.with_nezha(NezhaHeader::bare(
            NezhaPayloadKind::HealthProbe,
            VnicId(1),
            VpcId(1),
        ));
        assert!(probe.is_health());
        let stripped = probe.strip_nezha();
        assert_eq!(stripped.kind, PacketKind::Data);
        assert!(stripped.nezha.is_none());
        let notify = p.with_nezha(NezhaHeader::bare(
            NezhaPayloadKind::Notify,
            VnicId(1),
            VpcId(1),
        ));
        assert!(notify.is_notify());
    }
}

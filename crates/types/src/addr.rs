//! Addresses and identifiers used throughout the system.
//!
//! The cloud model follows the paper's terminology:
//! * a **VPC** isolates one tenant's virtual network ([`VpcId`]);
//! * a **vNIC** is the unit of offloading — each vNIC owns its rule tables
//!   ([`VnicId`]);
//! * a **server** hosts one SmartNIC/vSwitch ([`ServerId`]);
//! * [`Ipv4Addr`] / [`MacAddr`] are compact wire-friendly address types used
//!   in both overlay (tenant) and underlay (datacenter) headers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 32-bit IPv4 address stored in host byte order.
///
/// We intentionally do not use `std::net::Ipv4Addr`: this type needs cheap
/// arithmetic (prefix masking, offsetting for synthetic address allocation)
/// and direct `u32` access in hot paths of the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Ipv4Addr(pub u32);

impl Ipv4Addr {
    /// The all-zero (unspecified) address.
    pub const UNSPECIFIED: Ipv4Addr = Ipv4Addr(0);

    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | (d as u32))
    }

    /// Returns the four octets in network order.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// Reconstructs an address from network-order octets.
    pub const fn from_octets(o: [u8; 4]) -> Self {
        Ipv4Addr(u32::from_be_bytes(o))
    }

    /// Applies a prefix mask of the given length (`0..=32`).
    ///
    /// Used by longest-prefix-match route tables and by ACL prefix rules.
    pub const fn masked(self, prefix_len: u8) -> Ipv4Addr {
        if prefix_len == 0 {
            Ipv4Addr(0)
        } else {
            Ipv4Addr(self.0 & (u32::MAX << (32 - prefix_len as u32)))
        }
    }

    /// True when `self` falls inside `prefix/len`.
    pub const fn in_prefix(self, prefix: Ipv4Addr, len: u8) -> bool {
        self.masked(len).0 == prefix.masked(len).0
    }
}

impl fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ipv4Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<u32> for Ipv4Addr {
    fn from(v: u32) -> Self {
        Ipv4Addr(v)
    }
}

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Derives a locally-administered unicast MAC from a 32-bit id.
    ///
    /// The simulator allocates MACs for servers and gateways this way so
    /// that addresses are deterministic functions of topology ids.
    pub const fn from_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x4e, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            m[0], m[1], m[2], m[3], m[4], m[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw numeric id.
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{self}")
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type! {
    /// Identifies a tenant virtual network (VPC). Recorded alongside the
    /// 5-tuple in cached flows so tenants reusing the same private addresses
    /// stay isolated (paper §2.1).
    VpcId
}

id_type! {
    /// Identifies one virtual NIC. The vNIC is Nezha's unit of offloading:
    /// each vNIC owns a set of rule tables, and offloading moves *that
    /// vNIC's* stateless tables to remote FEs.
    VnicId
}

id_type! {
    /// Identifies a physical server (equivalently, its SmartNIC/vSwitch).
    ServerId
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_octet_round_trip() {
        let a = Ipv4Addr::new(10, 1, 2, 3);
        assert_eq!(a.octets(), [10, 1, 2, 3]);
        assert_eq!(Ipv4Addr::from_octets(a.octets()), a);
        assert_eq!(a.to_string(), "10.1.2.3");
    }

    #[test]
    fn ipv4_masking() {
        let a = Ipv4Addr::new(192, 168, 37, 201);
        assert_eq!(a.masked(24), Ipv4Addr::new(192, 168, 37, 0));
        assert_eq!(a.masked(16), Ipv4Addr::new(192, 168, 0, 0));
        assert_eq!(a.masked(0), Ipv4Addr::UNSPECIFIED);
        assert_eq!(a.masked(32), a);
    }

    #[test]
    fn ipv4_prefix_membership() {
        let p = Ipv4Addr::new(10, 0, 0, 0);
        assert!(Ipv4Addr::new(10, 200, 1, 1).in_prefix(p, 8));
        assert!(!Ipv4Addr::new(11, 0, 0, 1).in_prefix(p, 8));
        // Zero-length prefix matches everything.
        assert!(Ipv4Addr::new(1, 2, 3, 4).in_prefix(p, 0));
    }

    #[test]
    fn mac_from_id_is_deterministic_and_unicast() {
        let m1 = MacAddr::from_id(7);
        let m2 = MacAddr::from_id(7);
        let m3 = MacAddr::from_id(8);
        assert_eq!(m1, m2);
        assert_ne!(m1, m3);
        // Locally-administered bit set, multicast bit clear.
        assert_eq!(m1.0[0] & 0x02, 0x02);
        assert_eq!(m1.0[0] & 0x01, 0x00);
    }

    #[test]
    fn id_display() {
        assert_eq!(VnicId(3).to_string(), "VnicId(3)");
        assert_eq!(ServerId(9).raw(), 9);
        assert_eq!(VpcId::from(5u32), VpcId(5));
    }
}

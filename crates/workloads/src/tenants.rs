//! Heavy-tailed tenant populations: the demand skew behind the paper's
//! "shortage and waste" paradox.
//!
//! Production data (Fig. 4, Table 1) show a tiny fraction of tenants
//! generating almost all service usage: P50 VMs create 0.53% of the CPS
//! of P9999 VMs; P9999 CPU utilization is ~20× the average. The
//! population model draws per-tenant demand in three dimensions (CPS,
//! concurrent flows, vNICs) from clipped log-normals whose parameters are
//! calibrated to those percentile ratios, plus the Fig. 2 relation that
//! high-CPS VMs are themselves lightly loaded.

use nezha_sim::rng::SimRng;
use nezha_sim::stats::Samples;
use serde::{Deserialize, Serialize};

/// One tenant VM's sampled demand.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TenantSample {
    /// New connections per second the VM generates.
    pub cps: f64,
    /// Concurrent flows the VM sustains.
    pub concurrent_flows: f64,
    /// vNICs the VM provisions.
    pub vnics: f64,
    /// The VM's *own* CPU utilization — per Fig. 2, mostly below 60% even
    /// for the heaviest network users ("VMs with high network demands
    /// deplete the SmartNICs' resources, not their own").
    pub vm_cpu: f64,
}

/// Parameters of the tenant population.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TenantPopulation {
    /// Median CPS demand per VM.
    pub cps_median: f64,
    /// Log-normal sigma of CPS (≈2.0 reproduces Table 1's P99/P9999 ratio
    /// of ~6%).
    pub cps_sigma: f64,
    /// Median concurrent flows.
    pub flows_median: f64,
    /// Sigma of flows (Table 1: P50 0.78% of P9999).
    pub flows_sigma: f64,
    /// Median vNIC count.
    pub vnics_median: f64,
    /// Sigma of vNICs (Table 1: P50 0.65%, with a long P999→P9999 jump).
    pub vnics_sigma: f64,
}

impl Default for TenantPopulation {
    fn default() -> Self {
        TenantPopulation {
            cps_median: 120.0,
            cps_sigma: 2.0,
            flows_median: 900.0,
            flows_sigma: 1.9,
            vnics_median: 1.5,
            vnics_sigma: 2.0,
        }
    }
}

impl TenantPopulation {
    /// Samples one tenant VM.
    pub fn sample(&self, rng: &mut SimRng) -> TenantSample {
        let cps = self.cps_median * (self.cps_sigma * rng.normal()).exp();
        // A VM's own CPU load is only weakly tied to its network demand:
        // even the hottest network users are mostly under 60% (Fig. 2).
        let vm_cpu = (0.1 + 0.5 * rng.f64() + 0.1 * rng.normal()).clamp(0.02, 0.98);
        TenantSample {
            cps,
            concurrent_flows: self.flows_median * (self.flows_sigma * rng.normal()).exp(),
            vnics: (self.vnics_median * (self.vnics_sigma * rng.normal()).exp()).max(1.0),
            vm_cpu,
        }
    }

    /// Samples `n` tenants.
    pub fn sample_many(&self, n: usize, rng: &mut SimRng) -> Vec<TenantSample> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Builds Table 1: each capability's demand at P50/P90/P99/P999 as a
    /// fraction of its P9999 demand.
    pub fn usage_shares(&self, n: usize, rng: &mut SimRng) -> UsageShares {
        let tenants = self.sample_many(n, rng);
        let shares = |pick: fn(&TenantSample) -> f64| {
            let mut s = Samples::new();
            for t in &tenants {
                s.record(pick(t));
            }
            let p9999 = s.percentile(99.99);
            [
                s.percentile(50.0) / p9999,
                s.percentile(90.0) / p9999,
                s.percentile(99.0) / p9999,
                s.percentile(99.9) / p9999,
                1.0,
            ]
        };
        UsageShares {
            cps: shares(|t| t.cps),
            flows: shares(|t| t.concurrent_flows),
            vnics: shares(|t| t.vnics),
        }
    }
}

/// Table 1's normalized usage distribution: `[P50, P90, P99, P999, P9999]`
/// as fractions of the P9999 value.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct UsageShares {
    /// CPS shares.
    pub cps: [f64; 5],
    /// Concurrent-flow shares.
    pub flows: [f64; 5],
    /// vNIC-count shares.
    pub vnics: [f64; 5],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_tiny_p50_share() {
        let mut rng = SimRng::new(11);
        let shares = TenantPopulation::default().usage_shares(60_000, &mut rng);
        // Table 1: P50 is a fraction of a percent of P9999 for all three.
        assert!(shares.cps[0] < 0.03, "cps p50 share {}", shares.cps[0]);
        assert!(
            shares.flows[0] < 0.03,
            "flows p50 share {}",
            shares.flows[0]
        );
        assert!(
            shares.vnics[0] < 0.05,
            "vnics p50 share {}",
            shares.vnics[0]
        );
        // Monotone increase to 1.0 at P9999.
        for dim in [shares.cps, shares.flows, shares.vnics] {
            for w in dim.windows(2) {
                assert!(w[0] <= w[1]);
            }
            assert_eq!(dim[4], 1.0);
        }
        // P99 still under ~15% (paper: ~6%).
        assert!(shares.cps[2] < 0.15, "cps p99 share {}", shares.cps[2]);
    }

    #[test]
    fn fig2_high_cps_vms_are_lightly_loaded() {
        let mut rng = SimRng::new(12);
        let pop = TenantPopulation::default();
        let tenants = pop.sample_many(50_000, &mut rng);
        // Take the top 1% by CPS; 90% of them must be under ~70% VM CPU
        // (paper: 90% below 60%).
        let mut by_cps = tenants.clone();
        by_cps.sort_by(|a, b| b.cps.total_cmp(&a.cps));
        let hot = &by_cps[..500];
        let lightly = hot.iter().filter(|t| t.vm_cpu < 0.7).count();
        assert!(
            lightly as f64 / hot.len() as f64 > 0.8,
            "only {lightly}/500 hot VMs lightly loaded"
        );
    }

    #[test]
    fn samples_are_positive_and_deterministic() {
        let pop = TenantPopulation::default();
        let a = pop.sample_many(100, &mut SimRng::new(5));
        let b = pop.sample_many(100, &mut SimRng::new(5));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cps.to_bits(), y.cps.to_bits());
            assert!(x.cps > 0.0 && x.concurrent_flows > 0.0 && x.vnics >= 1.0);
            assert!((0.0..=1.0).contains(&x.vm_cpu));
        }
    }
}

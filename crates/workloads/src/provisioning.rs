//! vNIC-provisioning bursts: the container/serverless pattern that
//! stresses #vNICs (§2.2.2 — "the rise of container and serverless
//! services has led to high demands for vNIC provisioning").
//!
//! The generator emits a paced sequence of vNIC creation requests; the
//! consumer installs them on a vSwitch (or, under Nezha, creates their
//! rule tables directly on FEs — which is why #vNIC overloads vanish
//! entirely in Fig. 13).

use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha_vswitch::vnic::{Vnic, VnicProfile};

/// A provisioning burst description.
#[derive(Clone, Debug)]
pub struct VnicProvisioning {
    /// First vNIC id to allocate (ids increment from here).
    pub first_id: u32,
    /// Owning tenant.
    pub vpc: VpcId,
    /// Base overlay subnet; each vNIC gets `base + i` as its address.
    pub base_addr: Ipv4Addr,
    /// Profile every provisioned vNIC uses.
    pub profile: VnicProfile,
    /// Number of vNICs to create.
    pub count: usize,
    /// Pacing between requests.
    pub interval: SimDuration,
    /// Home server for the vNICs.
    pub home: ServerId,
}

impl VnicProvisioning {
    /// A serverless-style burst: many small vNICs, fast.
    pub fn serverless(
        first_id: u32,
        vpc: VpcId,
        base_addr: Ipv4Addr,
        count: usize,
        home: ServerId,
    ) -> Self {
        VnicProvisioning {
            first_id,
            vpc,
            base_addr,
            profile: VnicProfile {
                // Function sandboxes: tiny rule sets, few peers.
                acl_rules: 8,
                routes: 4,
                qos_rules: 0,
                nat_rules: 0,
                policy_rules: 0,
                mirror_rules: 0,
                pbr_rules: 0,
                vnic_server_entries: 16,
                extra_tables: 0,
                lookup_weight: 1.0,
                stateful_acl: true,
                stateful_decap: false,
            },
            count,
            interval: SimDuration::from_millis(5),
            home,
        }
    }

    /// Generates `(when, vnic)` pairs.
    pub fn generate(&self, start: SimTime) -> Vec<(SimTime, Vnic)> {
        (0..self.count)
            .map(|i| {
                let at = start + SimDuration(self.interval.nanos() * i as u64);
                let vnic = Vnic::new(
                    VnicId(self.first_id + i as u32),
                    self.vpc,
                    Ipv4Addr(self.base_addr.0 + i as u32),
                    self.profile,
                    self.home,
                );
                (at, vnic)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nezha_types::ServerId;
    use nezha_vswitch::config::VSwitchConfig;
    use nezha_vswitch::vswitch::VSwitch;

    fn burst(count: usize) -> VnicProvisioning {
        VnicProvisioning::serverless(
            100,
            VpcId(9),
            Ipv4Addr::new(10, 20, 0, 0),
            count,
            ServerId(0),
        )
    }

    #[test]
    fn generates_paced_unique_vnics() {
        let reqs = burst(50).generate(SimTime(0));
        assert_eq!(reqs.len(), 50);
        for (i, (at, v)) in reqs.iter().enumerate() {
            assert_eq!(at.nanos(), 5_000_000 * i as u64);
            assert_eq!(v.id, VnicId(100 + i as u32));
            assert_eq!(v.addr, Ipv4Addr(Ipv4Addr::new(10, 20, 0, 0).0 + i as u32));
        }
    }

    #[test]
    fn vswitch_memory_caps_provisioning_without_nezha() {
        // The #vNICs bottleneck of §2.2.2, reproduced: a memory-squeezed
        // vSwitch accepts only a fraction of a serverless burst.
        let cfg = VSwitchConfig::builder().table_memory(64 << 20).build();
        let mut vs = VSwitch::new(ServerId(0), cfg);
        let mut accepted = 0;
        for (_, v) in burst(100).generate(SimTime(0)) {
            if vs.add_vnic(v).is_ok() {
                accepted += 1;
            }
        }
        // Serverless vNICs still pay the ~2 MB fixed table overhead, so
        // 64 MB fits ~30.
        assert!(accepted < 40, "accepted {accepted}");
        assert!(accepted > 20, "accepted {accepted}");
        assert_eq!(vs.vnic_count(), accepted);
    }

    #[test]
    fn be_metadata_footprint_fits_the_same_burst_a_thousandfold() {
        // Under Nezha, the same budget holds BE metadata (2 KB each)
        // instead of full tables: the §6.2.1 1000x headroom.
        let cfg = VSwitchConfig::default();
        let per_table = burst(1).generate(SimTime(0))[0].1.table_memory(&cfg.memory);
        let ratio = per_table / cfg.memory.be_metadata;
        assert!(ratio >= 1_000, "tables/metadata ratio {ratio}");
    }
}

//! TCP_CRR-style CPS workload: short connections at a target rate.
//!
//! "Netperf TCP_CRR is used to simulate a traffic pattern that primarily
//! consists of short connections requiring high CPS" (§6.2.1). The
//! generator emits [`ConnSpec`]s with exponential (Poisson) inter-arrival
//! times at the requested mean rate, cycling client addresses and ports so
//! every connection is a distinct flow (each first packet takes the slow
//! path, exactly the load that saturates vSwitch CPUs).

use nezha_core::conn::{ConnKind, ConnSpec};
use nezha_sim::rng::SimRng;
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};

/// A CPS workload description.
#[derive(Clone, Debug)]
pub struct CpsWorkload {
    /// Target vNIC.
    pub vnic: VnicId,
    /// Its VPC.
    pub vpc: VpcId,
    /// The vNIC's overlay service address.
    pub service_addr: Ipv4Addr,
    /// The listening port (must be permitted by the vNIC's ACL).
    pub service_port: u16,
    /// Base of the client overlay address range (one /24 is cycled).
    pub client_base: Ipv4Addr,
    /// Servers hosting the client endpoints (cycled round-robin).
    pub client_servers: Vec<ServerId>,
    /// Mean connections per second.
    pub rate: f64,
    /// Workload duration.
    pub duration: SimDuration,
    /// Request/response payload bytes.
    pub payload: u32,
    /// Connection shape (default: full TCP_CRR).
    pub kind: ConnKind,
}

impl CpsWorkload {
    /// A standard TCP_CRR workload at `rate` connections/second.
    pub fn tcp_crr(
        vnic: VnicId,
        vpc: VpcId,
        service_addr: Ipv4Addr,
        service_port: u16,
        client_servers: Vec<ServerId>,
        rate: f64,
        duration: SimDuration,
    ) -> Self {
        CpsWorkload {
            vnic,
            vpc,
            service_addr,
            service_port,
            client_base: Ipv4Addr(service_addr.masked(16).0 | 0x0100), // x.y.1.0
            client_servers,
            rate,
            duration,
            payload: 128,
            kind: ConnKind::Inbound,
        }
    }

    /// Generates the connection specs with Poisson arrivals starting at
    /// `start`. Tuples are unique across the run (clients cycle a /24 of
    /// addresses × the ephemeral port range).
    pub fn generate(&self, start: SimTime, rng: &mut SimRng) -> Vec<ConnSpec> {
        assert!(self.rate > 0.0 && !self.client_servers.is_empty());
        let mut specs = Vec::new();
        let mut t = start;
        let end = start + self.duration;
        let mean_gap = 1.0 / self.rate;
        let mut n: u64 = 0;
        loop {
            t += SimDuration::from_secs_f64(rng.exp(mean_gap));
            if t >= end {
                break;
            }
            let client_ip = Ipv4Addr(self.client_base.0 + (n % 200) as u32);
            let port = 10_000 + ((n / 200) % 50_000) as u16;
            let tuple = FiveTuple::tcp(client_ip, port, self.service_addr, self.service_port);
            specs.push(ConnSpec {
                vnic: self.vnic,
                vpc: self.vpc,
                tuple,
                peer_server: self.client_servers[(n % self.client_servers.len() as u64) as usize],
                kind: self.kind,
                start: t,
                payload: self.payload,
                overlay_encap_src: None,
            });
            n += 1;
        }
        specs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn wl(rate: f64) -> CpsWorkload {
        CpsWorkload::tcp_crr(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            9000,
            vec![ServerId(8), ServerId(9)],
            rate,
            SimDuration::from_secs(1),
        )
    }

    #[test]
    fn rate_is_respected_on_average() {
        let mut rng = SimRng::new(1);
        let specs = wl(10_000.0).generate(SimTime::ZERO, &mut rng);
        let n = specs.len() as f64;
        assert!((9_000.0..11_000.0).contains(&n), "generated {n}");
    }

    #[test]
    fn tuples_are_unique_and_orderly() {
        let mut rng = SimRng::new(2);
        let specs = wl(5_000.0).generate(SimTime::ZERO, &mut rng);
        let tuples: HashSet<_> = specs.iter().map(|s| s.tuple).collect();
        assert_eq!(tuples.len(), specs.len(), "duplicate tuples");
        // Start times are nondecreasing and inside the window.
        for w in specs.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        assert!(specs.last().unwrap().start < SimTime::ZERO + SimDuration::from_secs(1));
        // All destined to the service.
        assert!(specs
            .iter()
            .all(|s| s.tuple.dst_port == 9000 && s.tuple.dst_ip == Ipv4Addr::new(10, 7, 0, 1)));
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = wl(2_000.0).generate(SimTime::ZERO, &mut SimRng::new(7));
        let b = wl(2_000.0).generate(SimTime::ZERO, &mut SimRng::new(7));
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.tuple == y.tuple && x.start == y.start));
    }

    #[test]
    fn clients_cycle_across_servers() {
        let mut rng = SimRng::new(3);
        let specs = wl(3_000.0).generate(SimTime::ZERO, &mut rng);
        let servers: HashSet<_> = specs.iter().map(|s| s.peer_server).collect();
        assert_eq!(servers.len(), 2);
    }
}

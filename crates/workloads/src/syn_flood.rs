//! SYN-flood workload (§7.3).
//!
//! Unanswered SYNs create embryonic sessions that pin BE state memory;
//! Nezha counters this with a short aging time for SYN-state entries.
//! The generator floods distinct-tuple SYNs at a fixed rate so tests and
//! experiments can verify the aging defence: BE memory stays bounded
//! even under a sustained flood.

use nezha_core::conn::{ConnKind, ConnSpec};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};

/// A SYN-flood description.
#[derive(Clone, Debug)]
pub struct SynFlood {
    /// Target vNIC.
    pub vnic: VnicId,
    /// Its VPC.
    pub vpc: VpcId,
    /// Attacked service address.
    pub service_addr: Ipv4Addr,
    /// Attacked port.
    pub service_port: u16,
    /// Server hosting the (spoofed) attack sources.
    pub attacker_server: ServerId,
    /// SYNs per second.
    pub rate: f64,
    /// Flood duration.
    pub duration: SimDuration,
}

impl SynFlood {
    /// Generates the flood's SYN specs (deterministic spacing: a flood
    /// tool, not a Poisson process).
    pub fn generate(&self, start: SimTime) -> Vec<ConnSpec> {
        let n = (self.rate * self.duration.as_secs_f64()) as usize;
        let gap = SimDuration::from_secs_f64(1.0 / self.rate);
        (0..n)
            .map(|i| {
                // Spoofed sources sweep a /16 far from the service subnet.
                let src = Ipv4Addr(0xc6120000 | (i as u32 % 65_536)); // 198.18/16
                ConnSpec {
                    vnic: self.vnic,
                    vpc: self.vpc,
                    tuple: FiveTuple::tcp(
                        src,
                        1024 + (i % 60_000) as u16,
                        self.service_addr,
                        self.service_port,
                    ),
                    peer_server: self.attacker_server,
                    kind: ConnKind::SynOnly,
                    start: start + SimDuration(gap.nanos() * i as u64),
                    payload: 0,
                    overlay_encap_src: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_shape() {
        let flood = SynFlood {
            vnic: VnicId(1),
            vpc: VpcId(1),
            service_addr: Ipv4Addr::new(10, 7, 0, 1),
            service_port: 9000,
            attacker_server: ServerId(9),
            rate: 10_000.0,
            duration: SimDuration::from_millis(500),
        };
        let specs = flood.generate(SimTime::ZERO);
        assert_eq!(specs.len(), 5_000);
        assert!(specs.iter().all(|s| s.kind == ConnKind::SynOnly));
        assert!(specs.iter().all(|s| s.payload == 0));
        // Spoofed sources are outside the tenant subnet.
        assert!(specs
            .iter()
            .all(|s| !s.tuple.src_ip.in_prefix(Ipv4Addr::new(10, 7, 0, 0), 16)));
        // Uniform spacing.
        let d0 = specs[1].start - specs[0].start;
        let d1 = specs[2].start - specs[1].start;
        assert_eq!(d0, d1);
    }
}

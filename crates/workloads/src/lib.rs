//! # nezha-workloads
//!
//! Traffic and population generators for the Nezha experiments:
//!
//! * [`cps`] — netperf TCP_CRR-style short-connection generators (the
//!   paper's testbed workload, §6.2.1), with Poisson arrivals and
//!   deterministic tuple allocation;
//! * [`flows`] — persistent-connection generators that bloat session
//!   tables (the L4-LB pattern of §2.2.2);
//! * [`provisioning`] — vNIC-creation bursts (the container/serverless
//!   pattern behind the #vNICs bottleneck);
//! * [`syn_flood`] — the SYN flood of §7.3;
//! * [`elephant`] — elephant-flow packet streams for the §7.5
//!   load-imbalance study;
//! * [`tenants`] — heavy-tailed tenant populations reproducing the
//!   production skew of Fig. 2, Fig. 4, and Table 1.
//!
//! All generators are deterministic functions of their seed, so every
//! experiment replays identically.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cps;
pub mod elephant;
pub mod flows;
pub mod provisioning;
pub mod syn_flood;
pub mod tenants;

pub use cps::CpsWorkload;
pub use elephant::ElephantFlow;
pub use flows::PersistentFlows;
pub use provisioning::VnicProvisioning;
pub use syn_flood::SynFlood;
pub use tenants::{TenantPopulation, TenantSample};

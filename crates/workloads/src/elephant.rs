//! Elephant flows for the load-imbalance study (§7.5).
//!
//! An elephant is a single long-lived flow whose packet rate dwarfs its
//! neighbours. Under plain 5-tuple hashing it lands on one FE and can
//! crowd out mice sharing that FE; Nezha's mitigation pins the elephant
//! to a *dedicated* FE (`BackendMeta::pin_flow` in `nezha-core`). The
//! generator emits the elephant's packet schedule; the harness injects
//! them as probes so per-packet latency is observable.

use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};

/// One elephant flow.
#[derive(Clone, Copy, Debug)]
pub struct ElephantFlow {
    /// Target vNIC.
    pub vnic: VnicId,
    /// Its VPC.
    pub vpc: VpcId,
    /// The elephant's 5-tuple (client → VM).
    pub tuple: FiveTuple,
    /// Server hosting the sending endpoint.
    pub peer_server: ServerId,
    /// Packets per second.
    pub pps: f64,
    /// Bytes per packet.
    pub packet_bytes: u32,
    /// Flow duration.
    pub duration: SimDuration,
}

impl ElephantFlow {
    /// A 1500 B bulk flow toward `service_addr:port` at `gbps` gigabits
    /// per second.
    pub fn bulk(
        vnic: VnicId,
        vpc: VpcId,
        service_addr: Ipv4Addr,
        port: u16,
        peer_server: ServerId,
        gbps: f64,
        duration: SimDuration,
    ) -> Self {
        ElephantFlow {
            vnic,
            vpc,
            tuple: FiveTuple::tcp(Ipv4Addr::new(198, 19, 0, 1), 40_000, service_addr, port),
            peer_server,
            pps: gbps * 1e9 / (1500.0 * 8.0),
            packet_bytes: 1500,
            duration,
        }
    }

    /// The packet injection times, uniformly paced.
    pub fn schedule(&self, start: SimTime) -> Vec<SimTime> {
        let n = (self.pps * self.duration.as_secs_f64()) as usize;
        let gap = SimDuration::from_secs_f64(1.0 / self.pps);
        (0..n)
            .map(|i| start + SimDuration(gap.nanos() * i as u64))
            .collect()
    }

    /// Offered load in bits per second.
    pub fn bps(&self) -> f64 {
        self.pps * self.packet_bytes as f64 * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_flow_rate_math() {
        let e = ElephantFlow::bulk(
            VnicId(1),
            VpcId(1),
            Ipv4Addr::new(10, 7, 0, 1),
            9000,
            ServerId(9),
            10.0,
            SimDuration::from_millis(10),
        );
        assert!((e.bps() - 10e9).abs() / 10e9 < 1e-9);
        let sched = e.schedule(SimTime::ZERO);
        // 10 Gbps of 1500B frames ≈ 833K pps → ~8333 packets in 10 ms.
        assert!((8_000..8_500).contains(&sched.len()), "{}", sched.len());
        assert!(sched.windows(2).all(|w| w[0] < w[1]));
    }
}

//! Persistent-connection workload: the session-table-bloating pattern.
//!
//! "Some L4 load balancers maintain persistent connections for each
//! client, which can cause session table bloat" (§2.2.2). Each generated
//! connection completes a handshake and one request/response, then stays
//! open — the session entry lives in the BE table until idle aging, so a
//! burst of these measures the #concurrent-flows capacity directly.

use nezha_core::conn::{ConnKind, ConnSpec};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_types::{FiveTuple, Ipv4Addr, ServerId, VnicId, VpcId};

/// A persistent-flows workload description.
#[derive(Clone, Debug)]
pub struct PersistentFlows {
    /// Target vNIC.
    pub vnic: VnicId,
    /// Its VPC.
    pub vpc: VpcId,
    /// Service address.
    pub service_addr: Ipv4Addr,
    /// Service port.
    pub service_port: u16,
    /// Servers hosting the clients.
    pub client_servers: Vec<ServerId>,
    /// Number of concurrent connections to open.
    pub count: usize,
    /// Interval between consecutive opens (paced, not Poisson — an LB
    /// ramping up its backend mesh).
    pub open_interval: SimDuration,
}

impl PersistentFlows {
    /// Generates `count` persistent connections starting at `start`.
    ///
    /// Tuples sweep client addresses across a /16 so arbitrarily many
    /// distinct sessions can coexist.
    pub fn generate(&self, start: SimTime) -> Vec<ConnSpec> {
        assert!(!self.client_servers.is_empty());
        (0..self.count)
            .map(|n| {
                let client_ip = Ipv4Addr(
                    self.service_addr.masked(16).0
                        | 0x0100
                        | ((n as u32 / 250) << 8)
                        | (n as u32 % 250 + 1),
                );
                let port = 10_000 + (n % 50_000) as u16;
                ConnSpec {
                    vnic: self.vnic,
                    vpc: self.vpc,
                    tuple: FiveTuple::tcp(client_ip, port, self.service_addr, self.service_port),
                    peer_server: self.client_servers[n % self.client_servers.len()],
                    kind: ConnKind::PersistentInbound,
                    start: start + SimDuration(self.open_interval.nanos() * n as u64),
                    payload: 64,
                    overlay_encap_src: None,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn wl(count: usize) -> PersistentFlows {
        PersistentFlows {
            vnic: VnicId(1),
            vpc: VpcId(1),
            service_addr: Ipv4Addr::new(10, 7, 0, 1),
            service_port: 9000,
            client_servers: vec![ServerId(8)],
            count,
            open_interval: SimDuration::from_micros(50),
        }
    }

    #[test]
    fn generates_distinct_persistent_conns() {
        let specs = wl(10_000).generate(SimTime::ZERO);
        assert_eq!(specs.len(), 10_000);
        let tuples: HashSet<_> = specs.iter().map(|s| s.tuple).collect();
        assert_eq!(tuples.len(), 10_000);
        assert!(specs.iter().all(|s| s.kind == ConnKind::PersistentInbound));
    }

    #[test]
    fn opens_are_paced() {
        let specs = wl(3).generate(SimTime(1_000));
        assert_eq!(specs[0].start, SimTime(1_000));
        assert_eq!(specs[1].start, SimTime(1_000 + 50_000));
        assert_eq!(specs[2].start, SimTime(1_000 + 100_000));
    }

    #[test]
    fn client_addresses_stay_inside_the_overlay_slash16() {
        let specs = wl(60_000).generate(SimTime::ZERO);
        for s in &specs {
            assert!(s.tuple.src_ip.in_prefix(Ipv4Addr::new(10, 7, 0, 0), 16));
        }
    }
}

//! End-to-end tests for the `nezha-lint` binary: exact rule ids, line
//! numbers, and exit codes on the fixture files.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Runs the binary on the given args; returns (exit code, stdout).
fn lint(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_nezha-lint"))
        .args(args)
        .output()
        .expect("spawn nezha-lint");
    let code = out.status.code().expect("exit code");
    (code, String::from_utf8_lossy(&out.stdout).into_owned())
}

fn lint_fixture(name: &str, extra: &[&str]) -> (i32, String) {
    let path = fixture(name);
    let mut args: Vec<&str> = extra.to_vec();
    let p = path.to_str().expect("utf8 path").to_string();
    let leaked: &str = Box::leak(p.into_boxed_str());
    args.push(leaked);
    lint(&args)
}

#[test]
fn d1_violation_reports_both_sites_with_lines() {
    let (code, out) = lint_fixture("d1_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D1]"), "output: {out}");
    assert!(out.contains("d1_violation.rs:5"), "output: {out}");
    assert!(out.contains("d1_violation.rs:6"), "output: {out}");
    assert!(out.contains("2 error(s)"), "output: {out}");
}

#[test]
fn d2_violation_reports_both_constructors() {
    let (code, out) = lint_fixture("d2_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D2]"), "output: {out}");
    assert!(out.contains("d2_violation.rs:4"), "output: {out}");
    assert!(out.contains("d2_violation.rs:5"), "output: {out}");
}

#[test]
fn d3_violation_reports_methods_and_for_loop() {
    let (code, out) = lint_fixture("d3_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D3]"), "output: {out}");
    assert!(out.contains("d3_violation.rs:10"), "output: {out}");
    assert!(out.contains("d3_violation.rs:11"), "output: {out}");
    assert!(out.contains("d3_violation.rs:14"), "output: {out}");
    assert!(out.contains("3 error(s)"), "output: {out}");
}

#[test]
fn d4_violation_reports_all_four_panics() {
    let (code, out) = lint_fixture("d4_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    for line in [5, 8, 10, 13] {
        assert!(
            out.contains(&format!("d4_violation.rs:{line}")),
            "output: {out}"
        );
    }
    assert!(out.contains("4 error(s)"), "output: {out}");
}

#[test]
fn d5_violation_is_a_warning_unless_denied() {
    let (code, out) = lint_fixture("d5_violation.rs", &[]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("[D5]"), "output: {out}");
    assert!(out.contains("d5_violation.rs:6"), "output: {out}");
    assert!(out.contains("1 warning(s)"), "output: {out}");

    let (code, _) = lint_fixture("d5_violation.rs", &["--deny-warnings"]);
    assert_eq!(code, 1);
}

#[test]
fn d6_violation_is_a_warning_unless_denied() {
    let (code, out) = lint_fixture("d6_violation.rs", &[]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("[D6]"), "output: {out}");
    assert!(out.contains("d6_violation.rs:6"), "output: {out}");
    assert!(out.contains("1 warning(s)"), "output: {out}");

    let (code, _) = lint_fixture("d6_violation.rs", &["--deny-warnings"]);
    assert_eq!(code, 1);
}

#[test]
fn d7_violation_reports_direct_telemetry_access() {
    let (code, out) = lint_fixture("d7_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D7]"), "output: {out}");
    for line in [7, 8, 11] {
        assert!(
            out.contains(&format!("d7_violation.rs:{line}")),
            "output: {out}"
        );
    }
    assert!(out.contains("5 error(s)"), "output: {out}");
}

#[test]
fn d8_violation_reports_panic_reachable_from_entry() {
    // The fixture is a directory: entry.rs holds the control-plane entry,
    // util.rs the panic site one call away.
    let (code, out) = lint_fixture("d8_violation", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D8]"), "output: {out}");
    assert!(out.contains("util.rs:4"), "output: {out}");
    assert!(
        out.contains("reachable from control-plane entry `route_update`"),
        "output: {out}"
    );
    assert!(
        out.contains("route_update -> lookup_or_die"),
        "output: {out}"
    );
    // The textual D4 rule also fires on the same unwrap (fixture scope).
    assert!(out.contains("[D4]"), "output: {out}");
    assert!(out.contains("2 error(s)"), "output: {out}");
}

#[test]
fn d9_violation_reports_adhoc_seed() {
    let (code, out) = lint_fixture("d9_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D9]"), "output: {out}");
    assert!(out.contains("d9_violation.rs:4"), "output: {out}");
    assert!(out.contains("ad-hoc seed"), "output: {out}");
    assert!(out.contains("1 error(s)"), "output: {out}");
}

#[test]
fn d9_stream_reuse_across_files_is_flagged_in_the_second_file() {
    let (code, out) = lint_fixture("d9_reuse", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D9]"), "output: {out}");
    assert!(out.contains("b.rs:4"), "output: {out}");
    assert!(out.contains("also derived in"), "output: {out}");
    assert!(out.contains("1 error(s)"), "output: {out}");
}

#[test]
fn d10_violation_reports_direct_and_transitive_allocations() {
    let (code, out) = lint_fixture("d10_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D10]"), "output: {out}");
    assert!(out.contains("d10_violation.rs:4"), "output: {out}");
    assert!(out.contains("d10_violation.rs:9"), "output: {out}");
    assert!(
        out.contains("reachable from hot-path fn `hot_drain`"),
        "output: {out}"
    );
    assert!(out.contains("2 error(s)"), "output: {out}");
}

#[test]
fn d10_obs_violation_flags_allocating_histogram_record_path() {
    let (code, out) = lint_fixture("d10_obs_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D10]"), "output: {out}");
    assert!(out.contains("d10_obs_violation.rs:6"), "output: {out}");
    assert!(out.contains("d10_obs_violation.rs:12"), "output: {out}");
    assert!(
        out.contains("reachable from hot-path fn `hot_record`"),
        "output: {out}"
    );
    assert!(out.contains("2 error(s)"), "output: {out}");
}

#[test]
fn d11_violation_reports_static_mut_and_refcell() {
    let (code, out) = lint_fixture("d11_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D11]"), "output: {out}");
    assert!(out.contains("d11_violation.rs:3"), "output: {out}");
    assert!(out.contains("d11_violation.rs:6"), "output: {out}");
    assert!(out.contains("2 error(s)"), "output: {out}");
}

#[test]
fn d12_violation_reports_ad_hoc_table_reads() {
    let (code, out) = lint_fixture("d12_violation.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D12]"), "output: {out}");
    for line in [7, 8, 13] {
        assert!(
            out.contains(&format!("d12_violation.rs:{line}")),
            "output: {out}"
        );
    }
    assert!(out.contains("3 error(s)"), "output: {out}");
}

#[test]
fn d8_clean_tree_passes() {
    let (code, out) = lint_fixture("d8_clean", &["--deny-warnings"]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("no violations"), "output: {out}");
}

#[test]
fn stale_allow_is_silent_by_default_and_a_warning_when_asked() {
    let (code, out) = lint_fixture("stale_allow.rs", &[]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("no violations"), "output: {out}");

    let (code, out) = lint_fixture("stale_allow.rs", &["--stale-allows"]);
    assert_eq!(code, 0, "output: {out}");
    assert!(out.contains("[stale-allow]"), "output: {out}");
    assert!(out.contains("stale_allow.rs:4"), "output: {out}");
    assert!(out.contains("1 warning(s)"), "output: {out}");

    let (code, _) = lint_fixture("stale_allow.rs", &["--stale-allows", "--deny-warnings"]);
    assert_eq!(code, 1);
}

#[test]
fn github_output_emits_workflow_commands() {
    let (code, out) = lint_fixture("d1_violation.rs", &["--github"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.starts_with("::error file="), "output: {out}");
    assert!(out.contains(",line=5,"), "output: {out}");
    assert!(out.contains("title=nezha-lint D1"), "output: {out}");
}

#[test]
fn clean_fixtures_pass() {
    for f in [
        "d1_clean.rs",
        "d2_clean.rs",
        "d3_clean.rs",
        "d4_clean.rs",
        "d5_clean.rs",
        "d6_clean.rs",
        "d7_clean.rs",
        "d9_clean.rs",
        "d10_clean.rs",
        "d10_obs_clean.rs",
        "d11_clean.rs",
        "d12_clean.rs",
        "test_code_clean.rs",
        "allow_justified.rs",
    ] {
        let (code, out) = lint_fixture(f, &["--deny-warnings"]);
        assert_eq!(code, 0, "{f} should be clean; output: {out}");
        assert!(out.contains("no violations"), "{f} output: {out}");
    }
}

#[test]
fn unjustified_allow_is_an_error() {
    let (code, out) = lint_fixture("allow_unjustified.rs", &[]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.contains("[D4]"), "output: {out}");
    assert!(out.contains("allow_unjustified.rs:6"), "output: {out}");
    assert!(out.contains("missing a justification"), "output: {out}");
}

#[test]
fn json_output_is_machine_readable() {
    let (code, out) = lint_fixture("d1_violation.rs", &["--json"]);
    assert_eq!(code, 1, "output: {out}");
    assert!(out.starts_with("{\"violations\":["), "output: {out}");
    assert!(out.contains("\"rule\":\"D1\""), "output: {out}");
    assert!(out.contains("\"line\":5"), "output: {out}");
    assert!(out.contains("\"severity\":\"error\""), "output: {out}");
    assert!(out.contains("\"errors\":2"), "output: {out}");
}

#[test]
fn usage_errors_exit_2() {
    let (code, _) = lint(&[]);
    assert_eq!(code, 2);
    let (code, _) = lint(&["--no-such-flag"]);
    assert_eq!(code, 2);
    let (code, _) = lint(&["/definitely/not/a/file.rs"]);
    assert_eq!(code, 2);
}

#[test]
fn workspace_scan_is_clean() {
    let (code, out) = lint(&["--workspace", "--stale-allows", "--deny-warnings"]);
    assert_eq!(code, 0, "workspace must stay lint-clean; output: {out}");
}

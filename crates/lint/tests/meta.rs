//! Meta-test: the rule catalogue, the fixture tree, and the CLI test
//! suite must stay in lock-step. Every rule D1–D12 needs a violation
//! fixture (a file or a directory tree), a clean fixture, and a CLI test
//! that asserts its id — otherwise a rule can silently rot.

use nezha_lint::ALL_RULES;
use std::path::PathBuf;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn the_catalogue_covers_d1_through_d12_exactly_once() {
    let ids: Vec<&str> = ALL_RULES.iter().map(|r| r.id).collect();
    let expect: Vec<String> = (1..=12).map(|i| format!("D{i}")).collect();
    assert_eq!(ids, expect.iter().map(String::as_str).collect::<Vec<_>>());
}

#[test]
fn every_rule_has_a_violation_and_a_clean_fixture() {
    for r in &ALL_RULES {
        let id = r.id.to_ascii_lowercase();
        for kind in ["violation", "clean"] {
            let file = fixtures().join(format!("{id}_{kind}.rs"));
            let tree = fixtures().join(format!("{id}_{kind}"));
            assert!(
                file.is_file() || tree.is_dir(),
                "rule {} has no {kind} fixture ({id}_{kind}.rs or {id}_{kind}/)",
                r.id
            );
        }
    }
}

#[test]
fn every_rule_is_asserted_by_a_cli_test() {
    let cli =
        std::fs::read_to_string(PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/cli.rs"))
            .expect("read tests/cli.rs");
    for r in &ALL_RULES {
        assert!(
            cli.contains(&format!("[{}]", r.id)),
            "tests/cli.rs never asserts rule {} output",
            r.id
        );
    }
}

// Fixture: D4 — panics in control-plane code. Expect D4 on lines 5, 8,
// 10, and 13.

fn lookup(map: &std::collections::BTreeMap<u32, u32>, k: u32) -> u32 {
    let v = map.get(&k).unwrap();
    let w = map
        .get(&(k + 1))
        .expect("neighbour must exist");
    if *v > *w {
        panic!("inverted ordering");
    }
    match v {
        0 => todo!(),
        n => *n,
    }
}

// Fixture: an allow directive whose finding no longer exists.

fn tidy() -> u32 {
    // nezha-lint: allow(D1): the timer call this suppressed was removed
    42
}

// Fixture: D8 clean — the entry propagates a default instead of panicking.

fn route_update(sessions: Option<u32>) -> u32 {
    lookup_safe(sessions)
}

// Fixture: D8 clean — fallible helper with no panic sites.

fn lookup_safe(sessions: Option<u32>) -> u32 {
    sessions.unwrap_or(0)
}

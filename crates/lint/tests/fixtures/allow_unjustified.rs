// Fixture: an allow without a justification is itself an error. Expect
// one D4 error on line 6 mentioning the missing justification.

fn force(v: Option<u32>) -> u32 {
    // nezha-lint: allow(D4)
    v.unwrap()
}

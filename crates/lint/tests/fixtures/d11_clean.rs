// Fixture: D11 clean — per-shard state passed by &mut; consts are fine.

const LANES: usize = 4;

fn bump(counters: &mut [u64; LANES], lane: usize) {
    counters[lane] += 1;
}

// Fixture: D11 — shared mutable state breaks deterministic shard merges.

static mut HIT_COUNT: u64 = 0;

fn leak(v: u32) {
    let cell = RefCell::new(v);
    let _ = cell;
}

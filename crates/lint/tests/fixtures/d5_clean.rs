// Fixture: D5 clean — handles registered in startup paths and used via
// the stored handle afterwards.

impl Worker {
    fn new(reg: &MetricsRegistry) -> Self {
        Worker {
            seen: reg.counter("pkt.seen", &[]),
        }
    }

    fn attach_metrics(&mut self, reg: &MetricsRegistry) {
        self.lat = reg.histogram("pkt.latency", &[]);
    }

    fn on_packet(&mut self, reg: &MetricsRegistry) {
        reg.inc(self.seen);
    }
}

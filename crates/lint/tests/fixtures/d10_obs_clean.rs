// Fixture: D10 clean — the `LogHistogram::record` shape: bucket index
// from the f64 bit pattern, a fixed-size counts array, no allocation
// anywhere on the per-sample path. Cold construction may allocate.

fn hot_record(counts: &mut [u64; 16], low: &mut u64, value: f64) {
    if !(value > 0.0) {
        *low += 1;
        return;
    }
    counts[bucket_index(value)] += 1;
}

fn bucket_index(value: f64) -> usize {
    let bits = value.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as usize;
    let mantissa_top = ((bits >> 48) & 0xf) as usize;
    (exp ^ mantissa_top) % 16
}

fn build_counts() -> Vec<u64> {
    vec![0; 16]
}

// Fixture: D8 — every fn in an `entry.rs` is a control-plane entry.

fn route_update(sessions: Option<u32>) -> u32 {
    lookup_or_die(sessions)
}

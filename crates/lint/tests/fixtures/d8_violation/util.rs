// Fixture: D8 — the panic is one hop below the entry point.

fn lookup_or_die(sessions: Option<u32>) -> u32 {
    sessions.unwrap()
}

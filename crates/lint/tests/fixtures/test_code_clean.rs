// Fixture: test items are exempt from every rule. Expect no violations.
use std::collections::HashMap;

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn wall_clock_and_hash_iteration_are_fine_here() {
        let t0 = Instant::now();
        let mut rng = rand::thread_rng();
        let map: HashMap<u32, u32> = HashMap::new();
        for (k, v) in &map {
            assert!(k <= v);
        }
        drop((t0, rng.gen::<u64>()));
    }
}

// Fixture: D12 — ad-hoc rule-table reads outside the stage layer: a
// helper re-implementing pipeline semantics against the raw tables
// instead of driving the compiled stage graph. Expect D12 (error) on
// lines 7, 8, and 13.

fn shortcut_lookup(vnic: &Vnic, tuple: &FiveTuple) -> bool {
    let verdict = vnic.tables.acl.lookup(tuple, Direction::Tx);
    let hop = vnic.tables.route.lookup(tuple.dst_ip);
    verdict.decision == Decision::Accept && hop.is_some()
}

fn shortcut_qos(vnic: &Vnic, port: u16) -> u8 {
    vnic.tables.qos.classify(port)
}

// Fixture: D7 — datapath handlers reaching the telemetry plumbing
// directly instead of through HandlerCtx. Expect D7 (error) twice on
// line 7, twice on line 8, and once on line 11.

impl Cluster {
    fn be_handle_tx(&mut self, ctx: &mut HandlerCtx, pkt: &Packet) {
        self.tel.inc(self.tel.misroutes);
        self.tel.profile_fault_drop(pkt, ctx.server, ctx.now);
    }
    fn fe_handle_rx(cl: &Cluster, pkt: &Packet) {
        cl.trace_pkt(cl.now(), ServerId(0), pkt, TraceEventKind::Notify);
    }
}

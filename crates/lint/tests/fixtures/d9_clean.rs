// Fixture: D9 clean — the seed traces through a named derive stream.

fn derived_rng(seed: u64) -> SimRng {
    SimRng::new(derive_seed(seed, "fixture.d9.rng"))
}

// Fixture: D1 — wall-clock reads. Expect D1 on lines 5 and 6.
use std::time::{Instant, SystemTime};

fn measure() -> u64 {
    let t0 = Instant::now();
    let wall = SystemTime::now();
    drop(wall);
    t0.elapsed().as_nanos() as u64
}

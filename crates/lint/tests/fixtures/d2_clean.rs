// Fixture: D2 clean — seeded RNG construction is fine anywhere.

fn roll(seed: u64) -> u64 {
    let mut rng = SimRng::new(derive_seed(seed, "fixture.roll"));
    let derived = SmallRng::seed_from_u64(seed ^ 0xa5a5);
    drop(derived);
    rng.next_u64()
}

// Fixture: D3 clean — ordered collections may be iterated freely, and
// point lookups on hash collections are fine.
use std::collections::{BTreeMap, HashMap};

fn observe(ordered: BTreeMap<u32, u32>, hashed: HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (k, v) in &ordered {
        acc ^= k ^ v;
    }
    acc ^= ordered.keys().sum::<u32>();
    acc ^= hashed.get(&7).copied().unwrap_or(0);
    acc
}

// Fixture: D6 clean — stage handles interned in startup paths and used
// via the stored StageHandle afterwards.

impl Worker {
    fn new(prof: &Profiler) -> Self {
        Worker {
            parse: prof.stage("parse"),
        }
    }

    fn register(&mut self, prof: &Profiler) {
        self.dma = prof.stage("dma");
    }

    fn on_packet(&mut self, prof: &Profiler) {
        prof.record(Span::leaf(self.parse));
    }
}

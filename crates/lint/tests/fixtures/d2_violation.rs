// Fixture: D2 — OS-entropy RNG construction. Expect D2 on lines 4 and 5.

fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let seeded_badly = SmallRng::from_entropy();
    drop(seeded_badly);
    rng.gen()
}

// Fixture: a justified allow suppresses the finding. Expect no
// violations in this file.
use std::collections::HashMap;

fn snapshot(map: &HashMap<u32, u32>) -> Vec<(u32, u32)> {
    // nezha-lint: allow(D3): keys are collected then sorted below
    let mut out: Vec<(u32, u32)> = map.iter().map(|(k, v)| (*k, *v)).collect();
    out.sort();
    out
}

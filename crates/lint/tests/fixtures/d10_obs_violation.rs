// Fixture: D10 — a histogram record path that allocates. A per-sample
// `record` on the datapath must be fixed-memory; formatting a bucket
// label (directly or via a helper) breaks that.

fn hot_record(counts: &mut [u64], value: f64) {
    let spill = value.to_string();
    let idx = (spill.len() + bucket_label(value).len()) % counts.len();
    counts[idx] += 1;
}

fn bucket_label(value: f64) -> String {
    format!("bucket={value:.3}")
}

// Fixture: D12 clean — lookups reach the rule tables through the
// compiled stage graph instead of reading table fields directly; the
// graph is the single source of pipeline semantics.

fn graph_lookup(graphs: &SwitchGraphs, vnic: &Vnic, tuple: &FiveTuple) -> PreActionPair {
    graphs.lookup_pair(vnic, tuple, Direction::Tx)
}

fn graph_process(graph: &PktGraph, ctx: &mut PktCtx, env: &mut LocalRun) -> StageVerdict {
    graph.eval(ctx, env)
}

// Fixture: D10 clean — the probe path is allocation-free; cold setup
// code may allocate freely.

fn hot_probe(slots: &[u32], h: u64) -> Option<u32> {
    let idx = (h as usize) % slots.len();
    slots.get(idx).copied()
}

fn setup_slots(n: usize) -> Vec<u32> {
    Vec::with_capacity(n)
}

// Fixture: D4 clean — typed errors instead of panics, and `#[test]`
// bodies may assert however they like.

fn lookup(map: &std::collections::BTreeMap<u32, u32>, k: u32) -> Result<u32, String> {
    map.get(&k)
        .copied()
        .ok_or_else(|| format!("unknown key {k}"))
}

#[test]
fn test_lookup() {
    let mut m = std::collections::BTreeMap::new();
    m.insert(1, 2);
    assert_eq!(lookup(&m, 1).unwrap(), 2);
}

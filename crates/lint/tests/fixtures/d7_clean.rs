// Fixture: D7 clean — a datapath handler that reaches every
// cross-cutting concern (charging, tracing, profiling, accounting)
// through the HandlerCtx methods.

fn be_handle_tx(ctx: &mut HandlerCtx, pkt: &Packet) {
    if !ctx.gate(pkt) {
        return;
    }
    let Some(charge) = ctx.charge(pkt, 100) else {
        return;
    };
    ctx.trace(charge.done, pkt, TraceEventKind::NshEncap);
    if ctx.profiler_enabled() {
        let st = ctx.stages();
        ctx.span(st.be_tx, pkt, ctx.now, charge.done, &[]);
    }
    ctx.note_local_cycles(100);
}

// Fixture: D5 — metrics handle acquired mid-simulation. Expect D5
// (warning) on line 6.

impl Worker {
    fn on_packet(&mut self, reg: &MetricsRegistry) {
        let h = reg.counter("pkt.seen", &[]);
        reg.inc(h);
    }
}

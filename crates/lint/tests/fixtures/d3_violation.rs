// Fixture: D3 — iteration over hash collections. Expect D3 on lines
// 10, 11, and 14 (`keys()`, `values()`, and the `for … in &map` loop).
use std::collections::{HashMap, HashSet};

struct State {
    flows: HashMap<u64, u64>,
}

fn observe(map: HashMap<u32, u32>, set: HashSet<u32>, s: &State) -> u32 {
    let first = map.keys().next().copied().unwrap_or(0);
    let live: Vec<u32> = set.iter().copied().collect();
    drop(live);
    let mut acc = first;
    for (k, _) in &s.flows {
        acc ^= *k as u32;
    }
    acc
}

// Fixture: D9 — ad-hoc seed, not derived through a named stream.

fn adhoc_rng(seed: u64) -> SimRng {
    SimRng::new(seed ^ 0xBEEF)
}

// Fixture: D6 — profiler stage handle interned mid-simulation. Expect
// D6 (warning) on line 6.

impl Worker {
    fn on_packet(&mut self, prof: &Profiler) {
        let h = prof.stage("parse");
        prof.record(Span::leaf(h));
    }
}

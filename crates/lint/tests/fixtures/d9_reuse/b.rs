// Fixture: D9 — re-deriving a stream owned by a.rs is cross-module reuse.

fn seed_beta(base: u64) -> u64 {
    derive_seed(base, "reuse.collide")
}

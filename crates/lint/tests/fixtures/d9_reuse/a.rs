// Fixture: D9 — the lexicographically first file owns the stream name.

fn seed_alpha(base: u64) -> u64 {
    derive_seed(base, "reuse.collide")
}

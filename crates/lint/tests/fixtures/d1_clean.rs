// Fixture: D1 clean — simulated time only; mentions of Instant::now in
// comments and strings must not be flagged.
fn measure(now: u64, started: u64) -> u64 {
    // A real implementation would call Instant::now() — we don't.
    let banner = "no Instant::now() here";
    drop(banner);
    now - started
}

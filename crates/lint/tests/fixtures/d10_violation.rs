// Fixture: D10 — allocation in, and reachable from, a `hot_*` fn.

fn hot_drain(depth: u32) -> u32 {
    let spill = vec![depth];
    spill_stats(depth) + spill.len() as u32
}

fn spill_stats(depth: u32) -> u32 {
    let label = format!("depth={depth}");
    label.len() as u32
}

//! Pass 2's call-graph / dataflow rule families (D8–D11), run over the
//! pass-1 symbol index and the conservative call graph.
//!
//! - **D8 panic reachability** — every function in a control-plane file
//!   is an entry point; a `panic!/todo!/unimplemented!/.unwrap()/.expect()`
//!   site transitively reachable from one is an error, reported *at the
//!   panic site* with the entry and call path. Sites inside control-plane
//!   files themselves are D4's (textual) jurisdiction and are skipped.
//! - **D9 RNG-stream lineage** — `SimRng::new(..)` whose seed argument
//!   does not trace through `derive_seed`/`derive_seed_indexed` is an
//!   ad-hoc seed; a stream name derived in two different files of the
//!   same crate is cross-module reuse. Both are errors.
//! - **D10 hot-path allocation** — heap allocation (`Vec::new`,
//!   `with_capacity`, `vec!`, `format!`, `.to_vec()`, `.collect()`,
//!   `.clone()` of a heap-typed binding …) inside, or reachable from,
//!   the bucket-ladder drain, the DenseMap probe path, the NSH codec,
//!   or a datapath handler.
//! - **D11 shard safety** — `static mut`, `static` items,
//!   `thread_local!`, `Rc`, `RefCell` in sim-visible crates outside the
//!   allow-listed observability modules.
//!
//! Fixture trees opt in by convention instead of by path: D8 entries are
//! fns in files named `entry.rs` (or a control-plane name), D10 roots are
//! fns named `hot_*`; D9/D11 apply to every fixture file.

use crate::callgraph::{reachable_from, reachable_from_where, CallGraph};
use crate::rules::{Severity, Violation, CONTROL_PLANE_FILES, CONTROL_PLANE_PATHS, SIM_VISIBLE};
use crate::symbols::Workspace;
use std::collections::{BTreeMap, BTreeSet};

const HINT_D8: &str = "return a NezhaResult and propagate the error; every path below a \
     control-plane entry point must be panic-free (or allow-list the site with a justification)";
const HINT_D9: &str = "seed through nezha_sim::rng::derive_seed(base, \"component.stream\") \
     (or derive_seed_indexed for per-instance streams) so shards can re-derive exactly \
     their own streams";
const HINT_D9_REUSE: &str = "give each module its own stream name; two modules sharing one \
     stream would collide when shards re-derive their streams independently";
const HINT_D10: &str = "hoist the allocation to a startup path or reuse a preallocated \
     buffer; the drain/probe/codec/handler paths must be allocation-free to keep the \
     raw-speed envelope";
const HINT_D11: &str = "pass per-shard state by &mut instead; shared mutable statics and \
     Rc/RefCell break deterministic shard merges";

/// Observability modules allowed to keep `Rc`/`RefCell` internals: they
/// are never shared across shard boundaries (one instance per shard,
/// merged through explicit snapshots).
const D11_ALLOWED_FILES: [&str; 7] = [
    "crates/sim/src/metrics.rs",
    "crates/sim/src/trace.rs",
    "crates/sim/src/profile.rs",
    "crates/sim/src/obs/mod.rs",
    "crates/sim/src/obs/loghist.rs",
    "crates/sim/src/obs/slo.rs",
    "crates/sim/src/obs/export.rs",
];

/// Hot-path files where *every* function is a D10 root (the PR 6
/// datapath handler layer, including the `HandlerCtx` plumbing).
const HOT_FILES: [&str; 5] = [
    "crates/core/src/datapath/be.rs",
    "crates/core/src/datapath/fe.rs",
    "crates/core/src/datapath/dispatch.rs",
    "crates/core/src/datapath/ctx.rs",
    "crates/core/src/datapath/mod.rs",
];

/// Hot-path files where only the named functions are D10 roots. The
/// bucket ladder's schedule side and the DenseMap write side allocate by
/// design (amortised growth, spare-buffer recycling) — the drain and
/// probe paths must not. `LogHistogram`'s record path is pinned too: it
/// runs per sample on the datapath and must stay fixed-memory.
const HOT_FNS: [(&str, &[&str]); 4] = [
    (
        "crates/sim/src/engine.rs",
        &["pop", "pop_until", "pop_batch_until", "refill", "peek_time"],
    ),
    ("crates/sim/src/obs/loghist.rs", &["record", "bucket_index"]),
    (
        "crates/sim/src/dense.rs",
        &["probe", "get", "get_mut", "contains_key"],
    ),
    (
        "crates/types/src/nsh.rs",
        &[
            "encode",
            "encode_into",
            "decode",
            "parse",
            "wire_len",
            "encode_pre_action",
            "encode_pre_action_into",
            "decode_pre_action",
        ],
    ),
];

fn file_name(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn is_fixture(path: &str) -> bool {
    path.contains("fixtures")
}

fn sim_visible(path: &str) -> bool {
    SIM_VISIBLE.iter().any(|p| path.starts_with(p))
}

/// True for real control-plane files — D4's textual jurisdiction, and
/// the set whose functions are D8 entry points.
fn control_plane_real(path: &str) -> bool {
    sim_visible(path)
        && (CONTROL_PLANE_FILES.contains(&file_name(path))
            || CONTROL_PLANE_PATHS.contains(&path)
            || path.starts_with("crates/core/src/datapath/"))
}

/// Is every fn in this file a D8 entry point?
fn d8_entry_file(path: &str) -> bool {
    if is_fixture(path) {
        let name = file_name(path);
        name == "entry.rs" || CONTROL_PLANE_FILES.contains(&name)
    } else {
        control_plane_real(path)
    }
}

fn d9_scope(path: &str) -> bool {
    if is_fixture(path) {
        return true;
    }
    // rng.rs defines derive_seed and the raw constructor itself.
    sim_visible(path) && path != "crates/sim/src/rng.rs"
}

fn d11_scope(path: &str) -> bool {
    if is_fixture(path) {
        return true;
    }
    sim_visible(path) && !D11_ALLOWED_FILES.contains(&path)
}

/// Slow-path boundary for the D10 walk: control-plane modules invoked
/// from a handler (config pushes, scale events, fallback triggers) are
/// rare-event excursions, not per-packet work — the walk does not
/// descend into them.
fn d10_boundary(path: &str) -> bool {
    !is_fixture(path)
        && sim_visible(path)
        && (CONTROL_PLANE_FILES.contains(&file_name(path)) || CONTROL_PLANE_PATHS.contains(&path))
}

/// Is this fn a D10 hot-path root?
fn d10_root(path: &str, fn_name: &str) -> bool {
    if is_fixture(path) {
        return fn_name.starts_with("hot_");
    }
    if HOT_FILES.contains(&path) {
        return true;
    }
    HOT_FNS
        .iter()
        .any(|(p, fns)| *p == path && fns.contains(&fn_name))
}

/// Runs D8–D11 over the whole index; returns raw violations (allow
/// directives are applied per file by the caller).
pub fn check_workspace(ws: &Workspace, graph: &CallGraph) -> Vec<Violation> {
    let mut out = Vec::new();
    check_d8(ws, graph, &mut out);
    check_d9(ws, &mut out);
    check_d10(ws, graph, &mut out);
    check_d11(ws, &mut out);
    out
}

fn path_names(ws: &Workspace, path: &[usize]) -> String {
    path.iter()
        .map(|&id| ws.fns[id].name.as_str())
        .collect::<Vec<_>>()
        .join(" -> ")
}

fn check_d8(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Violation>) {
    // Dedup per panic site, keeping the first (lowest-entry-id, shortest)
    // path that reaches it.
    let mut seen: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    for (entry, f) in ws.fns.iter().enumerate() {
        if !d8_entry_file(&ws.files[f.file].path) {
            continue;
        }
        for r in reachable_from(graph, entry) {
            let rf = &ws.fns[r.fn_id];
            let rpath = &ws.files[rf.file].path;
            // Panics *inside* control-plane/entry files are D4's job.
            if d8_entry_file(rpath) {
                continue;
            }
            for site in &rf.panics {
                if !seen.insert((rf.file, site.line, site.what.clone())) {
                    continue;
                }
                out.push(Violation {
                    file: rpath.clone(),
                    line: site.line,
                    rule: "D8",
                    severity: Severity::Error,
                    message: format!(
                        "panic site `{}` is reachable from control-plane entry `{}` \
                         (path: {})",
                        site.what,
                        f.name,
                        path_names(ws, &r.path),
                    ),
                    hint: HINT_D8,
                });
            }
        }
    }
}

fn check_d9(ws: &Workspace, out: &mut Vec<Violation>) {
    // Ad-hoc seeds.
    for file in &ws.files {
        if !d9_scope(&file.path) {
            continue;
        }
        for rng in &file.rng_news {
            if rng.derived {
                continue;
            }
            out.push(Violation {
                file: file.path.clone(),
                line: rng.line,
                rule: "D9",
                severity: Severity::Error,
                message: "`SimRng::new` seeded outside the derive_seed stream discipline \
                          (ad-hoc seed)"
                    .to_string(),
                hint: HINT_D9,
            });
        }
    }

    // Stream reuse across files of one crate: stream -> unit -> files.
    let mut streams: BTreeMap<(String, String), BTreeSet<usize>> = BTreeMap::new();
    for (idx, file) in ws.files.iter().enumerate() {
        if !d9_scope(&file.path) {
            continue;
        }
        for d in &file.derive_calls {
            if let Some(s) = &d.stream {
                streams
                    .entry((file.crate_key.clone(), s.clone()))
                    .or_default()
                    .insert(idx);
            }
        }
    }
    for ((_unit, stream), files) in &streams {
        if files.len() < 2 {
            continue;
        }
        // The lexicographically first file keeps the stream; every other
        // file's uses are reuse errors.
        let mut paths: Vec<usize> = files.iter().copied().collect();
        paths.sort_by(|&a, &b| ws.files[a].path.cmp(&ws.files[b].path));
        let owner = ws.files[paths[0]].path.clone();
        for &idx in &paths[1..] {
            let file = &ws.files[idx];
            for d in &file.derive_calls {
                if d.stream.as_deref() == Some(stream.as_str()) {
                    out.push(Violation {
                        file: file.path.clone(),
                        line: d.line,
                        rule: "D9",
                        severity: Severity::Error,
                        message: format!(
                            "RNG stream \"{stream}\" is also derived in {owner}; stream \
                             names must be unique per module"
                        ),
                        hint: HINT_D9_REUSE,
                    });
                }
            }
        }
    }
}

fn check_d10(ws: &Workspace, graph: &CallGraph, out: &mut Vec<Violation>) {
    let mut seen: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    for (root, f) in ws.fns.iter().enumerate() {
        if !d10_root(&ws.files[f.file].path, &f.name) {
            continue;
        }
        // Allocations written directly in the hot fn.
        for site in &f.allocs {
            if !seen.insert((f.file, site.line, site.what.clone())) {
                continue;
            }
            out.push(Violation {
                file: ws.files[f.file].path.clone(),
                line: site.line,
                rule: "D10",
                severity: Severity::Error,
                message: format!(
                    "heap allocation `{}` in hot-path fn `{}`",
                    site.what, f.name
                ),
                hint: HINT_D10,
            });
        }
        // Allocations in functions the hot fn (transitively) calls,
        // stopping at the slow-path boundary.
        for r in reachable_from_where(graph, root, |id| {
            !d10_boundary(&ws.files[ws.fns[id].file].path)
        }) {
            let rf = &ws.fns[r.fn_id];
            if d10_root(&ws.files[rf.file].path, &rf.name) {
                continue; // flagged as its own root
            }
            for site in &rf.allocs {
                if !seen.insert((rf.file, site.line, site.what.clone())) {
                    continue;
                }
                out.push(Violation {
                    file: ws.files[rf.file].path.clone(),
                    line: site.line,
                    rule: "D10",
                    severity: Severity::Error,
                    message: format!(
                        "heap allocation `{}` is reachable from hot-path fn `{}` (path: {})",
                        site.what,
                        f.name,
                        path_names(ws, &r.path),
                    ),
                    hint: HINT_D10,
                });
            }
        }
    }
}

fn check_d11(ws: &Workspace, out: &mut Vec<Violation>) {
    for file in &ws.files {
        if !d11_scope(&file.path) {
            continue;
        }
        for site in &file.shard_hazards {
            out.push(Violation {
                file: file.path.clone(),
                line: site.line,
                rule: "D11",
                severity: Severity::Error,
                message: format!("{} in sim-visible shard-candidate code", site.what),
                hint: HINT_D11,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph;
    use crate::lexer::lex;
    use crate::rules::strip_tests;

    fn run(files: &[(&str, &str)]) -> Vec<(String, u32, &'static str)> {
        let lexed: Vec<(String, Vec<crate::lexer::SpannedTok>)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), strip_tests(&lex(s).toks)))
            .collect();
        let ws = Workspace::build(&lexed);
        let graph = callgraph::build(&ws);
        check_workspace(&ws, &graph)
            .into_iter()
            .map(|v| (v.file, v.line, v.rule))
            .collect()
    }

    #[test]
    fn d8_flags_transitive_panic_from_control_plane() {
        let got = run(&[
            (
                "crates/core/src/cluster.rs",
                "fn step(&mut self) { advance_epoch(self); }",
            ),
            (
                "crates/core/src/epoch.rs",
                "fn advance_epoch(cl: &mut Cluster) { cl.slots.checked_add(1).unwrap(); }",
            ),
        ]);
        assert_eq!(got, vec![("crates/core/src/epoch.rs".to_string(), 1, "D8")]);
    }

    #[test]
    fn d8_skips_panics_inside_control_plane_files_and_unreached_code() {
        // Direct control-plane panics are D4's job; unreachable panics in
        // helper files are out of the D8 envelope.
        let got = run(&[
            ("crates/core/src/cluster.rs", "fn step() { x.unwrap(); }"),
            ("crates/core/src/epoch.rs", "fn never_called() { panic!() }"),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn d9_flags_adhoc_seed_but_not_derived() {
        let got = run(&[(
            "crates/core/src/region.rs",
            "fn a(cfg: &Config) -> SimRng { SimRng::new(cfg.seed) }\n\
             fn b(cfg: &Config) -> SimRng { SimRng::new(derive_seed(cfg.seed, \"region.rng\")) }",
        )]);
        assert_eq!(
            got,
            vec![("crates/core/src/region.rs".to_string(), 1, "D9")]
        );
    }

    #[test]
    fn d9_flags_stream_reuse_across_files_only() {
        let got = run(&[
            (
                "crates/core/src/alpha.rs",
                "fn a(s: u64) -> u64 { derive_seed(s, \"shared.stream\") }\n\
                 fn a2(s: u64) -> u64 { derive_seed(s, \"shared.stream\") }",
            ),
            (
                "crates/core/src/beta.rs",
                "fn b(s: u64) -> u64 { derive_seed(s, \"shared.stream\") }",
            ),
        ]);
        // Same-file repetition is fine; the second file's use is flagged.
        assert_eq!(got, vec![("crates/core/src/beta.rs".to_string(), 1, "D9")]);
    }

    #[test]
    fn d10_flags_direct_and_transitive_allocs_from_hot_roots() {
        let got = run(&[
            (
                "crates/core/src/datapath/be.rs",
                "fn be_handle_tx(ctx: &mut HandlerCtx) { let v = vec![1]; route_miss(ctx); }",
            ),
            (
                "crates/core/src/routing.rs",
                "fn route_miss(ctx: &mut HandlerCtx) { let s = format!(\"{}\", 1); }",
            ),
        ]);
        assert_eq!(
            got,
            vec![
                ("crates/core/src/datapath/be.rs".to_string(), 1, "D10"),
                ("crates/core/src/routing.rs".to_string(), 1, "D10"),
            ]
        );
    }

    #[test]
    fn d10_ignores_cold_fns_and_non_root_engine_fns() {
        let got = run(&[
            (
                "crates/core/src/monitor.rs",
                "fn rebalance() { let v = Vec::new(); }",
            ),
            (
                "crates/sim/src/engine.rs",
                "impl Engine { fn schedule_at(&mut self) { self.buckets.push(Vec::new()); } }",
            ),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn d11_flags_hazards_outside_the_allow_list() {
        let got = run(&[
            (
                "crates/core/src/region.rs",
                "static mut HITS: u64 = 0;\nfn f() { let c = Rc::new(1); }",
            ),
            (
                "crates/sim/src/trace.rs",
                "fn g() { let c = Rc::new(RefCell::new(1)); }",
            ),
            ("crates/lint/src/lexer.rs", "static TABLE: u8 = 1;"),
        ]);
        assert_eq!(
            got,
            vec![
                ("crates/core/src/region.rs".to_string(), 1, "D11"),
                ("crates/core/src/region.rs".to_string(), 2, "D11"),
            ]
        );
    }

    #[test]
    fn fixture_conventions_entry_and_hot_prefix() {
        let got = run(&[
            (
                "crates/lint/tests/fixtures/d8_violation/entry.rs",
                "fn route(x: Option<u32>) { helper(x); }",
            ),
            (
                "crates/lint/tests/fixtures/d8_violation/util.rs",
                "fn helper(x: Option<u32>) -> u32 { x.unwrap() }",
            ),
            (
                "crates/lint/tests/fixtures/d10_violation.rs",
                "fn hot_drain() { let v = Vec::new(); }\nfn setup() { let v = Vec::new(); }",
            ),
        ]);
        assert_eq!(
            got,
            vec![
                (
                    "crates/lint/tests/fixtures/d8_violation/util.rs".to_string(),
                    1,
                    "D8"
                ),
                (
                    "crates/lint/tests/fixtures/d10_violation.rs".to_string(),
                    1,
                    "D10"
                ),
            ]
        );
    }
}

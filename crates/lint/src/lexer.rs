//! A minimal Rust lexer: good enough to token-match the D1–D5 rule
//! patterns with accurate line numbers, while never being fooled by
//! comments, string/char literals, or raw strings.
//!
//! The workspace builds fully offline (vendored shims only), so `syn` is
//! not available; this hand-rolled scanner is the whole parsing layer.
//! It produces a flat token stream — identifiers and the punctuation the
//! rules care about — plus the `// nezha-lint: allow(...)` directives
//! found in line comments.

use std::collections::BTreeMap;

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character (`.`, `:`, `(`, `{`, `!`, …).
    Punct(char),
    /// A string literal (normal, raw, or byte), with its content.
    /// Rule patterns that only look at identifiers skip these; the D9
    /// RNG-lineage rule reads them to learn `derive_seed` stream names.
    Lit(String),
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// The string-literal content, if this token is one.
    pub fn lit(&self) -> Option<&str> {
        match self {
            Tok::Lit(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the given punctuation character.
    pub fn is(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }
}

/// A token with the 1-based source line it starts on.
#[derive(Clone, Debug)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// One `// nezha-lint: allow(<rules>)[: justification]` directive.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// Rule ids named in the directive (upper-cased, e.g. `D3`).
    pub rules: Vec<String>,
    /// True when a non-empty justification follows the rule list.
    pub justified: bool,
}

/// The output of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream, comments and literals stripped.
    pub toks: Vec<SpannedTok>,
    /// Allow directives keyed by the line they appear on.
    pub allows: BTreeMap<u32, Vec<AllowDirective>>,
}

/// Lexes Rust source into tokens + allow directives.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    while i < n {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && b[i + 1] == '/' => {
                // Line comment: scan for an allow directive, then skip.
                // Doc comments (`///`, `//!`) never carry directives —
                // they *document* the syntax, they don't annotate code.
                let is_doc = matches!(b.get(i + 2), Some('/') | Some('!'));
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != '\n' {
                    j += 1;
                }
                if !is_doc {
                    let body: String = b[start..j].iter().collect();
                    if let Some(d) = parse_allow(&body) {
                        out.allows.entry(line).or_default().push(d);
                    }
                }
                i = j;
            }
            '/' if i + 1 < n && b[i + 1] == '*' => {
                // Block comment, nesting per Rust.
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                let start_line = line;
                let mut content = String::new();
                i = skip_string(&b, i, &mut line, &mut content);
                out.toks.push(SpannedTok {
                    tok: Tok::Lit(content),
                    line: start_line,
                });
            }
            'r' | 'b' if is_raw_or_byte_string(&b, i) => {
                let start_line = line;
                let mut content = String::new();
                let was_string;
                (i, was_string) = skip_raw_or_byte(&b, i, &mut line, &mut content);
                if was_string {
                    out.toks.push(SpannedTok {
                        tok: Tok::Lit(content),
                        line: start_line,
                    });
                }
            }
            '\'' => i = skip_char_or_lifetime(&b, i, &mut line),
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(SpannedTok {
                    tok: Tok::Ident(b[start..i].iter().collect()),
                    line,
                });
            }
            _ if c.is_ascii_digit() => i = skip_number(&b, i),
            '.' | ':' | '(' | ')' | '{' | '}' | '<' | '>' | '&' | ',' | ';' | '#' | '[' | ']'
            | '=' | '!' | '|' | '-' => {
                out.toks.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line,
                });
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses the body of a line comment into an allow directive, if present.
/// Accepted form: `nezha-lint: allow(D1, D3)` with an optional trailing
/// `: <justification>`.
fn parse_allow(body: &str) -> Option<AllowDirective> {
    let marker = "nezha-lint:";
    let at = body.find(marker)?;
    let rest = body[at + marker.len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_ascii_uppercase())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return None;
    }
    let tail = rest[close + 1..].trim_start();
    let justified = tail.strip_prefix(':').is_some_and(|j| !j.trim().is_empty());
    Some(AllowDirective { rules, justified })
}

fn is_raw_or_byte_string(b: &[char], i: usize) -> bool {
    // r"..." | r#"..."# | b"..." | br"..." | br#"..."#
    match b[i] {
        'r' => matches!(b.get(i + 1), Some('"') | Some('#')),
        'b' => match b.get(i + 1) {
            Some('"') => true,
            Some('r') => matches!(b.get(i + 2), Some('"') | Some('#')),
            _ => false,
        },
        _ => false,
    }
}

/// Returns the new position and whether a string literal was consumed
/// (false for raw identifiers like `r#match`, which share the prefix).
fn skip_raw_or_byte(
    b: &[char],
    mut i: usize,
    line: &mut u32,
    content: &mut String,
) -> (usize, bool) {
    let n = b.len();
    let mut raw = false;
    if b[i] == 'b' {
        i += 1;
    }
    if i < n && b[i] == 'r' {
        raw = true;
        i += 1;
    }
    let mut hashes = 0;
    while i < n && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || b[i] != '"' {
        return (i, false); // raw identifier (`r#match`) or the like
    }
    i += 1;
    while i < n {
        if b[i] == '\n' {
            *line += 1;
            content.push('\n');
            i += 1;
        } else if !raw && b[i] == '\\' {
            // An escaped newline (string line-continuation) still ends a
            // source line — count it, or every line number below drifts.
            if b.get(i + 1) == Some(&'\n') {
                *line += 1;
            }
            content.extend(b.get(i..i + 2).unwrap_or_default());
            i += 2;
        } else if b[i] == '"' {
            // A raw string ends at `"` followed by `hashes` hash marks.
            let mut k = 0;
            while k < hashes && i + 1 + k < n && b[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return (i + 1 + hashes, true);
            }
            content.push(b[i]);
            i += 1;
        } else {
            content.push(b[i]);
            i += 1;
        }
    }
    (i, true)
}

fn skip_string(b: &[char], mut i: usize, line: &mut u32, content: &mut String) -> usize {
    let n = b.len();
    i += 1;
    while i < n {
        match b[i] {
            '\\' => {
                // Count escaped-newline line continuations (see above).
                if b.get(i + 1) == Some(&'\n') {
                    *line += 1;
                }
                content.extend(b.get(i..i + 2).unwrap_or_default());
                i += 2;
            }
            '\n' => {
                *line += 1;
                content.push('\n');
                i += 1;
            }
            '"' => return i + 1,
            c => {
                content.push(c);
                i += 1;
            }
        }
    }
    i
}

/// Distinguishes `'a'` / `'\n'` (char literals, skipped) from `'a` in
/// `&'a str` (lifetimes, consumed entirely — emitting the lifetime name
/// as an identifier would turn `&'static str` into a phantom `static`
/// item for any rule that looks for one).
fn skip_char_or_lifetime(b: &[char], i: usize, line: &mut u32) -> usize {
    let n = b.len();
    if i + 1 >= n {
        return i + 1;
    }
    if b[i + 1] == '\\' {
        // Escaped char literal: find the closing quote.
        let mut j = i + 2;
        if j < n {
            j += 1; // the escaped character itself
        }
        // Multi-char escapes (\x41, \u{...}) run until the quote.
        while j < n && b[j] != '\'' {
            if b[j] == '\n' {
                *line += 1;
            }
            j += 1;
        }
        return j + 1;
    }
    if i + 2 < n && b[i + 2] == '\'' {
        return i + 3; // plain char literal 'x'
    }
    // Lifetime (or loop label): consume the quote and the name.
    let mut j = i + 1;
    while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    j
}

fn skip_number(b: &[char], mut i: usize) -> usize {
    let n = b.len();
    // Integer part (covers 0x/0b/0o digits and `_` separators).
    while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
        i += 1;
    }
    // Fraction only when `.` is followed by a digit (so `0..n` and
    // tuple-index chains are left to the punct lexer).
    if i + 1 < n && b[i] == '.' && b[i + 1].is_ascii_digit() {
        i += 1;
        while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
            i += 1;
        }
        // Exponent sign (`1.5e-9`).
        if i < n && (b[i] == '+' || b[i] == '-') && b[i - 1].eq_ignore_ascii_case(&'e') {
            i += 1;
            while i < n && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter_map(|t| t.tok.ident().map(String::from))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // Instant::now in a comment
            /* thread_rng in a block /* nested */ still comment */
            let s = "Instant::now inside a string";
            let r = r#"thread_rng raw"#;
            let c = 'x';
            let real = foo();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(ids.contains(&"real".to_string()));
        assert!(ids.contains(&"foo".to_string()));
    }

    #[test]
    fn lifetimes_do_not_eat_source() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x.unwrap() }";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = "a\nb\n\nc";
        let lexed = lex(src);
        let lines: Vec<u32> = lexed.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn allow_directive_with_and_without_reason() {
        let src = "x // nezha-lint: allow(D3): keys are sorted first\ny // nezha-lint: allow(D1)\n";
        let lexed = lex(src);
        let a = &lexed.allows[&1][0];
        assert_eq!(a.rules, vec!["D3"]);
        assert!(a.justified);
        let b = &lexed.allows[&2][0];
        assert_eq!(b.rules, vec!["D1"]);
        assert!(!b.justified);
    }

    #[test]
    fn doc_comments_do_not_carry_allow_directives() {
        let src = "/// example: `// nezha-lint: allow(D1)`\n\
                   //! module doc: nezha-lint: allow(D2)\n\
                   x // nezha-lint: allow(D3): real directive\n";
        let lexed = lex(src);
        assert!(!lexed.allows.contains_key(&1));
        assert!(!lexed.allows.contains_key(&2));
        assert_eq!(lexed.allows[&3][0].rules, vec!["D3"]);
    }

    #[test]
    fn raw_strings_with_hashes_do_not_leak_phantom_tokens() {
        // A `"#`-bearing raw string must end at the matching hash count,
        // not at the first embedded quote — otherwise the tail would be
        // lexed as code and produce phantom violations.
        let src = r####"
            let a = r##"contains "# inside, and Instant::now too"##;
            let b = br#"byte raw thread_rng"#;
            let c = b"plain byte \" unwrap";
            after_strings();
        "####;
        let ids = idents(src);
        assert!(!ids.contains(&"Instant".to_string()));
        assert!(!ids.contains(&"thread_rng".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"after_strings".to_string()));
    }

    #[test]
    fn raw_identifiers_are_not_mistaken_for_strings() {
        // `r#fn` shares a prefix with raw strings; the following real
        // string must still be stripped and the next ident still seen.
        let src = "let r#type = 1; let s = \"panic!\"; real();";
        let ids = idents(src);
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"real".to_string()));
    }

    #[test]
    fn escaped_newline_in_string_still_counts_the_line() {
        let src = "let s = \"a\\\nb\";\nviolation_site();\n";
        let lexed = lex(src);
        let t = lexed
            .toks
            .iter()
            .find(|t| t.tok.ident() == Some("violation_site"))
            .expect("ident");
        assert_eq!(t.line, 3, "escaped newline must advance the line counter");
    }

    #[test]
    fn multiline_raw_string_line_accounting() {
        let src = "let s = r#\"one\ntwo\nthree\"#;\nmarker();\n";
        let lexed = lex(src);
        let t = lexed
            .toks
            .iter()
            .find(|t| t.tok.ident() == Some("marker"))
            .expect("ident");
        assert_eq!(t.line, 4);
    }

    #[test]
    fn string_literals_are_captured_as_lits() {
        let src = "derive_seed(seed, \"cluster.faults\")";
        let lexed = lex(src);
        let lits: Vec<&str> = lexed.toks.iter().filter_map(|t| t.tok.lit()).collect();
        assert_eq!(lits, vec!["cluster.faults"]);
    }

    #[test]
    fn static_lifetime_is_not_a_static_item_token() {
        let src = "fn f(x: &'static str) -> &'static str { x }";
        let ids = idents(src);
        assert!(
            !ids.contains(&"static".to_string()),
            "`&'static` must not produce a `static` ident"
        );
    }

    #[test]
    fn nested_block_comments_with_string_like_content() {
        let src = "/* outer \" /* inner */ still \"# comment */ live();";
        let ids = idents(src);
        assert_eq!(ids, vec!["live".to_string()]);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let src = "for i in 0..n { let x = 1.5e-9; v.iter() }";
        let ids = idents(src);
        assert!(ids.contains(&"iter".to_string()));
        assert!(ids.contains(&"n".to_string()));
    }
}

//! A conservative intra-crate call graph over the pass-1 symbol index.
//!
//! Edges are resolved per call-graph unit (crate / fixture tree):
//!
//! - **Free calls** `foo(..)` link to free functions named `foo` in the
//!   same unit, preferring the caller's own module when it defines one.
//! - **Qualified calls** `Type::foo(..)` link to methods `foo` of impls
//!   on `Type`; when no impl matches, the qualifier is tried as a module
//!   name (`driver::inject(..)`).
//! - **Method calls** `.foo(..)` link to every method named `foo` in the
//!   unit — unless `foo` is on the common-std-method deny list, where a
//!   name match would almost always be a `Vec`/`Option`/iterator method
//!   and wire spurious edges through the whole crate.
//!
//! Anything unresolvable produces no edge: cross-crate calls, trait
//! objects, closures, function pointers, macro bodies. The graph
//! over-approximates reachability *within* a crate (multiple same-name
//! candidates all get edges) and under-approximates across crate
//! boundaries; DESIGN.md §9c documents this envelope.

use crate::symbols::{CallKind, Workspace};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Method names so ubiquitous on std types that a bare `.name(..)` call
/// is far more likely std than a crate-local method. Bare-method edges to
/// these are dropped (qualified `Type::name(..)` still resolves).
const METHOD_DENY: [&str; 58] = [
    "new",
    "default",
    "clone",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "next",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "contains",
    "contains_key",
    "drain",
    "clear",
    "take",
    "replace",
    "extend",
    "retain",
    "sort",
    "sort_by",
    "sort_unstable",
    "min",
    "max",
    "map",
    "filter",
    "fold",
    "find",
    "any",
    "all",
    "count",
    "sum",
    "last",
    "first",
    "entry",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "and_then",
    "ok",
    "err",
    "as_ref",
    "as_mut",
    "parse",
    "collect",
];

/// The resolved graph: `edges[f]` lists `(callee fn id, call line)`.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Outgoing edges per function in [`Workspace::fns`] order.
    pub edges: Vec<Vec<(usize, u32)>>,
}

/// Builds the call graph for every unit in the workspace.
pub fn build(ws: &Workspace) -> CallGraph {
    // Per-unit lookup tables.
    // (unit, fn name) -> free fn ids / method fn ids.
    let mut free: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    // (unit, self ty, fn name) -> fn ids.
    let mut typed: BTreeMap<(&str, &str, &str), Vec<usize>> = BTreeMap::new();
    // (unit, module last segment, fn name) -> free fn ids.
    let mut by_mod: BTreeMap<(&str, &str, &str), Vec<usize>> = BTreeMap::new();

    for (id, f) in ws.fns.iter().enumerate() {
        let unit = ws.files[f.file].crate_key.as_str();
        match &f.self_ty {
            Some(ty) => {
                methods.entry((unit, &f.name)).or_default().push(id);
                typed.entry((unit, ty, &f.name)).or_default().push(id);
            }
            None => {
                free.entry((unit, &f.name)).or_default().push(id);
                let last_seg = f.module.rsplit("::").next().unwrap_or("");
                by_mod
                    .entry((unit, last_seg, &f.name))
                    .or_default()
                    .push(id);
            }
        }
    }

    let mut graph = CallGraph {
        edges: vec![Vec::new(); ws.fns.len()],
    };
    for (id, f) in ws.fns.iter().enumerate() {
        let unit = ws.files[f.file].crate_key.as_str();
        for call in &f.calls {
            let name = call.name.as_str();
            let targets: Vec<usize> = match &call.kind {
                CallKind::Free => {
                    let all = free.get(&(unit, name)).cloned().unwrap_or_default();
                    // Prefer candidates in the caller's own module.
                    let local: Vec<usize> = all
                        .iter()
                        .copied()
                        .filter(|&t| ws.fns[t].module == f.module)
                        .collect();
                    if local.is_empty() {
                        all
                    } else {
                        local
                    }
                }
                CallKind::Qualified(q) => {
                    let by_ty = typed.get(&(unit, q.as_str(), name));
                    match by_ty {
                        Some(v) => v.clone(),
                        // `module::free_fn(..)`.
                        None => by_mod
                            .get(&(unit, q.as_str(), name))
                            .cloned()
                            .unwrap_or_default(),
                    }
                }
                CallKind::Method => {
                    if METHOD_DENY.contains(&name) {
                        Vec::new()
                    } else {
                        methods.get(&(unit, name)).cloned().unwrap_or_default()
                    }
                }
            };
            for t in targets {
                if t != id {
                    graph.edges[id].push((t, call.line));
                }
            }
        }
        graph.edges[id].sort_unstable();
        graph.edges[id].dedup();
    }
    graph
}

/// One entry in a BFS result: the reached function plus the path taken.
#[derive(Debug)]
pub struct Reached {
    /// Reached fn id.
    pub fn_id: usize,
    /// Fn-id path from (and including) the entry to this fn.
    pub path: Vec<usize>,
    /// Line in the *entry* function where the path's first call occurs.
    pub entry_line: u32,
}

/// Breadth-first reachability from `entry`, excluding the entry itself.
/// Paths are shortest-first and deterministic (edges are sorted).
pub fn reachable_from(graph: &CallGraph, entry: usize) -> Vec<Reached> {
    reachable_from_where(graph, entry, |_| true)
}

/// [`reachable_from`] with a node filter: functions for which `enter`
/// returns false are neither reported nor traversed through. Rules use
/// this to stop a hot-path walk at a slow-path boundary (e.g. D10 does
/// not descend into control-plane modules — a config push reached from a
/// handler is a slow-path excursion, not per-packet work).
pub fn reachable_from_where(
    graph: &CallGraph,
    entry: usize,
    enter: impl Fn(usize) -> bool,
) -> Vec<Reached> {
    let mut seen: BTreeSet<usize> = BTreeSet::new();
    seen.insert(entry);
    // (fn id, predecessor index in `out`, entry call line).
    let mut out: Vec<Reached> = Vec::new();
    let mut pred: Vec<Option<usize>> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new(); // indices into out/pred

    for &(callee, line) in &graph.edges[entry] {
        if enter(callee) && seen.insert(callee) {
            out.push(Reached {
                fn_id: callee,
                path: Vec::new(),
                entry_line: line,
            });
            pred.push(None);
            queue.push_back(out.len() - 1);
        }
    }
    while let Some(idx) = queue.pop_front() {
        let fn_id = out[idx].fn_id;
        let entry_line = out[idx].entry_line;
        for &(callee, _) in &graph.edges[fn_id] {
            if enter(callee) && seen.insert(callee) {
                out.push(Reached {
                    fn_id: callee,
                    path: Vec::new(),
                    entry_line,
                });
                pred.push(Some(idx));
                queue.push_back(out.len() - 1);
            }
        }
    }
    // Materialise paths from predecessor chains.
    for i in 0..out.len() {
        let mut chain = vec![out[i].fn_id];
        let mut p = pred[i];
        while let Some(j) = p {
            chain.push(out[j].fn_id);
            p = pred[j];
        }
        chain.push(entry);
        chain.reverse();
        out[i].path = chain;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::symbols::Workspace;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        let lexed: Vec<(String, Vec<crate::lexer::SpannedTok>)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), lex(s).toks))
            .collect();
        Workspace::build(&lexed)
    }

    fn fn_id(ws: &Workspace, name: &str) -> usize {
        ws.fns.iter().position(|f| f.name == name).unwrap()
    }

    #[test]
    fn cross_file_free_call_resolves_within_a_crate() {
        let ws = ws_of(&[
            ("crates/core/src/a.rs", "fn caller() { helper(1); }"),
            (
                "crates/core/src/b.rs",
                "fn helper(x: u32) { x.checked_mul(2).unwrap(); }",
            ),
        ]);
        let g = build(&ws);
        let caller = fn_id(&ws, "caller");
        let helper = fn_id(&ws, "helper");
        assert_eq!(g.edges[caller], vec![(helper, 1)]);
        let r = reachable_from(&g, caller);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].path, vec![caller, helper]);
    }

    #[test]
    fn calls_do_not_cross_crate_boundaries() {
        let ws = ws_of(&[
            ("crates/core/src/a.rs", "fn caller() { helper(); }"),
            ("crates/sim/src/b.rs", "fn helper() { panic!(); }"),
        ]);
        let g = build(&ws);
        assert!(g.edges[fn_id(&ws, "caller")].is_empty());
    }

    #[test]
    fn deny_listed_bare_methods_make_no_edges_but_qualified_do() {
        let ws = ws_of(&[(
            "crates/core/src/a.rs",
            "impl T { fn insert(&mut self) { panic!() } }\n\
             fn bare(t: &mut std::collections::BTreeMap<u32,u32>) { t.insert(1, 2); }\n\
             fn qualified(t: &mut T) { T::insert(t); }\n",
        )]);
        let g = build(&ws);
        assert!(g.edges[fn_id(&ws, "bare")].is_empty());
        assert_eq!(g.edges[fn_id(&ws, "qualified")].len(), 1);
    }

    #[test]
    fn distinctive_method_names_do_make_edges() {
        let ws = ws_of(&[(
            "crates/core/src/a.rs",
            "impl Driver { fn inject_probe(&mut self) { todo!() } }\n\
             fn tick(d: &mut Driver) { d.inject_probe(); }\n",
        )]);
        let g = build(&ws);
        assert_eq!(g.edges[fn_id(&ws, "tick")].len(), 1);
    }

    #[test]
    fn same_module_free_fn_is_preferred() {
        let ws = ws_of(&[
            (
                "crates/core/src/a.rs",
                "fn helper() {}\nfn caller() { helper(); }",
            ),
            ("crates/core/src/b.rs", "fn helper() { panic!() }"),
        ]);
        let g = build(&ws);
        let caller = fn_id(&ws, "caller");
        let local_helper = ws
            .fns
            .iter()
            .position(|f| f.name == "helper" && f.module == "core::a")
            .unwrap();
        assert_eq!(g.edges[caller], vec![(local_helper, 2)]);
    }

    #[test]
    fn bfs_paths_are_shortest_and_deterministic() {
        let ws = ws_of(&[(
            "crates/core/src/a.rs",
            "fn entry() { mid(); deep_target(); }\n\
             fn mid() { deep_target(); }\n\
             fn deep_target() {}\n",
        )]);
        let g = build(&ws);
        let r = reachable_from(&g, fn_id(&ws, "entry"));
        let deep = r
            .iter()
            .find(|x| ws.fns[x.fn_id].name == "deep_target")
            .unwrap();
        // Direct edge wins over the path through `mid`.
        assert_eq!(deep.path.len(), 2);
    }
}

//! CLI for `nezha-lint`.
//!
//! ```text
//! cargo run -p nezha-lint -- --workspace [--json] [--deny-warnings]
//! cargo run -p nezha-lint -- [--root DIR] PATH...
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use nezha_lint::{
    analyze, collect_workspace_files, render_github, render_human, render_json, walk, Severity,
};

const USAGE: &str = "\
nezha-lint: workspace determinism, panic-safety & layering checks (rules D1-D12)

Two-pass analyzer: pass 1 indexes symbols and builds a conservative
intra-crate call graph across the whole workspace; pass 2 runs the
token-pattern rules (D1-D7, D12 stage-layer table access) and the
call-graph/dataflow rules (D8 panic reachability, D9 RNG-stream
lineage, D10 hot-path allocation, D11 shard safety).

USAGE:
    nezha-lint --workspace [OPTIONS]
    nezha-lint [OPTIONS] PATH...

OPTIONS:
    --workspace        lint every .rs file in the workspace (src/, crates/,
                       tests/, examples/; vendor/, target/ and fixtures skipped)
    --json             machine-readable JSON on stdout
    --github           GitHub Actions ::error/::warning annotations on stdout
    --deny-warnings    treat warnings (D5/D6/stale allows) as failures
    --stale-allows     also report allow() directives that suppress nothing
    --root DIR         workspace root for relative paths / --workspace
                       (default: the repo containing this crate)
    -h, --help         this text

Suppress a finding with a justified allow comment on the line or the line
above:  // nezha-lint: allow(D3): keys are collected and sorted below
";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("nezha-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> std::io::Result<ExitCode> {
    let mut workspace = false;
    let mut json = false;
    let mut github = false;
    let mut deny_warnings = false;
    let mut stale_allows = false;
    let mut root: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--github" => github = true,
            "--deny-warnings" => deny_warnings = true,
            "--stale-allows" => stale_allows = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("nezha-lint: --root requires a directory argument");
                    return Ok(ExitCode::from(2));
                }
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                eprintln!("nezha-lint: unknown flag `{flag}`\n\n{USAGE}");
                return Ok(ExitCode::from(2));
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    if !workspace && paths.is_empty() {
        eprintln!("nezha-lint: nothing to lint (pass --workspace or file paths)\n\n{USAGE}");
        return Ok(ExitCode::from(2));
    }

    // The binary lives in <root>/crates/lint, so the default workspace
    // root is two levels up from the manifest.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });

    let mut files: Vec<PathBuf> = Vec::new();
    if workspace {
        files.extend(collect_workspace_files(&root)?);
    }
    for p in &paths {
        if p.is_dir() {
            walk(p, &mut files)?;
        } else if p.is_file() {
            files.push(p.clone());
        } else {
            eprintln!("nezha-lint: no such file: {}", p.display());
            return Ok(ExitCode::from(2));
        }
    }
    files.sort();
    files.dedup();

    let analysis = analyze(&root, &files)?;
    let mut violations = analysis.violations;
    if stale_allows {
        violations.extend(analysis.stale_allows);
        violations.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
        });
    }
    let errors = violations
        .iter()
        .filter(|v| v.severity == Severity::Error)
        .count();
    let warnings = violations.len() - errors;

    if json {
        print!("{}", render_json(&violations));
    } else if github {
        print!("{}", render_github(&violations));
    } else {
        print!("{}", render_human(&violations));
        if violations.is_empty() {
            println!("nezha-lint: {} files checked, no violations", files.len());
        } else {
            println!(
                "nezha-lint: {} files checked: {errors} error(s), {warnings} warning(s)",
                files.len()
            );
        }
    }

    if errors > 0 || (deny_warnings && warnings > 0) {
        Ok(ExitCode::from(1))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

//! Pass 1 of the two-pass analyzer: a workspace-wide symbol index.
//!
//! Built purely from the lexer's token streams (no `syn` — the workspace
//! is offline), the index records, per file: the module path, every
//! `fn`/`impl` item with the calls, panic sites, and allocation sites in
//! its body, plus the raw material for the dataflow rules — `SimRng`
//! construction sites (D9), `derive_seed` stream declarations (D9), and
//! shard-safety hazards (D11).
//!
//! The index is deliberately *conservative in the false-negative
//! direction*: anything it cannot resolve (cross-crate calls, trait
//! dispatch, function pointers, macro-generated items) simply produces
//! no edge. See DESIGN.md §9c for the envelope.

use crate::lexer::{SpannedTok, Tok};
use std::collections::BTreeSet;

/// A source location paired with what was found there.
#[derive(Clone, Debug)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the construct (e.g. `.unwrap()`).
    pub what: String,
}

/// How a call site names its target.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(..)` — a free function (or tuple-struct constructor).
    Free,
    /// `.foo(..)` — a method on an unknown receiver type.
    Method,
    /// `Qualifier::foo(..)` — the qualifier is the preceding path segment
    /// (`Self` is substituted with the enclosing impl's type).
    Qualified(String),
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee name as written.
    pub name: String,
    /// Resolution shape.
    pub kind: CallKind,
    /// 1-based line of the call.
    pub line: u32,
}

/// One indexed function (free fn, method, or trait default method).
#[derive(Clone, Debug)]
pub struct FnSym {
    /// Function name.
    pub name: String,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Module path including inline `mod` nesting (e.g. `core::datapath::be`).
    pub module: String,
    /// Enclosing `impl` type, when this is a method.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Call sites in the body, in source order.
    pub calls: Vec<Call>,
    /// Panic sites in the body (`panic!`, `todo!`, `unimplemented!`,
    /// `.unwrap()`, `.expect(..)`).
    pub panics: Vec<Site>,
    /// Heap-allocation sites in the body (see D10).
    pub allocs: Vec<Site>,
}

/// One `SimRng::new(..)` construction site.
#[derive(Clone, Debug)]
pub struct RngNew {
    /// 1-based line.
    pub line: u32,
    /// True when the seed argument traces through `derive_seed`/
    /// `derive_seed_indexed`.
    pub derived: bool,
}

/// One `derive_seed(..)` / `derive_seed_indexed(..)` call site.
#[derive(Clone, Debug)]
pub struct DeriveCall {
    /// 1-based line.
    pub line: u32,
    /// The stream-name string literal, when one is present in the args.
    pub stream: Option<String>,
}

/// Everything indexed from one file.
#[derive(Clone, Debug, Default)]
pub struct FileSyms {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Call-graph unit this file belongs to (crate name, or a synthetic
    /// per-fixture-tree key).
    pub crate_key: String,
    /// Module path of the file itself.
    pub module: String,
    /// Indices into [`Workspace::fns`] for functions defined here.
    pub fn_ids: Vec<usize>,
    /// `SimRng::new` sites (D9).
    pub rng_news: Vec<RngNew>,
    /// `derive_seed*` sites (D9).
    pub derive_calls: Vec<DeriveCall>,
    /// Shard-safety hazards: statics, `thread_local!`, `Rc`, `RefCell` (D11).
    pub shard_hazards: Vec<Site>,
}

/// The pass-1 output: every indexed file plus a flat function table.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Per-file symbol tables.
    pub files: Vec<FileSyms>,
    /// Flat function table; `FileSyms::fn_ids` and the call graph index
    /// into this.
    pub fns: Vec<FnSym>,
}

/// Container types whose `::new`/`::with_capacity` (and whose `.clone()`)
/// mean heap work.
const HEAP_TYPES: [&str; 12] = [
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "Rc",
    "Arc",
    "PathBuf",
    "BinaryHeap",
];

/// Methods that allocate on any receiver.
const ALLOC_METHODS: [&str; 4] = ["to_string", "to_vec", "to_owned", "collect"];

/// Idents that look like calls but are control-flow keywords or binding
/// forms, never resolvable functions.
const NOT_CALLS: [&str; 24] = [
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "unsafe", "else",
    "let", "mut", "ref", "break", "continue", "where", "impl", "dyn", "box", "await", "use", "pub",
];

impl Workspace {
    /// Builds the index from `(rel_path, test-stripped tokens)` pairs.
    pub fn build(files: &[(String, Vec<SpannedTok>)]) -> Workspace {
        let mut ws = Workspace::default();
        for (path, toks) in files {
            let file_idx = ws.files.len();
            let syms = index_file(path, toks, file_idx, &mut ws.fns);
            ws.files.push(syms);
        }
        ws
    }
}

/// Call-graph unit for a path: real crates map to their crate name, each
/// fixture tree is its own unit (so linter test inputs never wire edges
/// into real code), and loose files stand alone.
pub fn crate_key(path: &str) -> String {
    if let Some(pos) = path.find("fixtures/") {
        let rest = &path[pos + "fixtures/".len()..];
        return match rest.split_once('/') {
            Some((dir, _)) => format!("fixture:{dir}"),
            None => format!("fixture:{rest}"),
        };
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        if let Some((name, _)) = rest.split_once('/') {
            return name.to_string();
        }
    }
    if path.starts_with("src/") {
        return "nezha".to_string();
    }
    // tests/, examples/, absolute paths: each file is its own unit.
    path.to_string()
}

/// Module path for a file (`crates/core/src/datapath/be.rs` →
/// `core::datapath::be`); inline `mod` nesting is appended during the walk.
pub fn module_of(path: &str) -> String {
    let (prefix, rel) = if let Some(rest) = path.strip_prefix("crates/") {
        match rest.split_once("/src/") {
            Some((krate, tail)) => (krate.to_string(), tail),
            None => (crate_key(path), rest.split_once('/').map_or("", |x| x.1)),
        }
    } else if let Some(rest) = path.strip_prefix("src/") {
        ("nezha".to_string(), rest)
    } else if let Some(pos) = path.find("fixtures/") {
        (crate_key(path), &path[pos + "fixtures/".len()..])
    } else {
        (crate_key(path), "")
    };
    let mut out = prefix;
    let mut segs: Vec<&str> = rel.split('/').filter(|s| !s.is_empty()).collect();
    if let Some(last) = segs.last_mut() {
        *last = last.strip_suffix(".rs").unwrap_or(last);
    }
    for seg in segs {
        if seg == "lib" || seg == "main" || seg == "mod" {
            continue;
        }
        out.push_str("::");
        out.push_str(seg);
    }
    out
}

/// What the next `{` opens.
enum Pending {
    Fn { name: String, line: u32 },
    Mod(String),
    Impl(Option<String>),
}

fn index_file(path: &str, toks: &[SpannedTok], file_idx: usize, fns: &mut Vec<FnSym>) -> FileSyms {
    let mut syms = FileSyms {
        path: path.to_string(),
        crate_key: crate_key(path),
        module: module_of(path),
        ..FileSyms::default()
    };
    let heap_names = collect_typed_names(toks, &HEAP_TYPES);

    let mut depth: u32 = 0;
    let mut pending: Option<Pending> = None;
    // (fn index, body depth) / (module name, depth) / (self ty, depth).
    let mut fn_stack: Vec<(usize, u32)> = Vec::new();
    let mut mod_stack: Vec<(String, u32)> = Vec::new();
    let mut impl_stack: Vec<(Option<String>, u32)> = Vec::new();
    let mut hazard_seen: BTreeSet<(u32, String)> = BTreeSet::new();

    let n = toks.len();
    for i in 0..n {
        let t = &toks[i];
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                match pending.take() {
                    Some(Pending::Fn { name, line }) => {
                        let module = full_module(&syms.module, &mod_stack);
                        let self_ty = impl_stack.last().and_then(|(ty, _)| ty.clone());
                        fns.push(FnSym {
                            name,
                            file: file_idx,
                            module,
                            self_ty,
                            line,
                            calls: Vec::new(),
                            panics: Vec::new(),
                            allocs: Vec::new(),
                        });
                        syms.fn_ids.push(fns.len() - 1);
                        fn_stack.push((fns.len() - 1, depth));
                    }
                    Some(Pending::Mod(name)) => mod_stack.push((name, depth)),
                    Some(Pending::Impl(ty)) => impl_stack.push((ty, depth)),
                    None => {}
                }
            }
            Tok::Punct('}') => {
                if fn_stack.last().is_some_and(|&(_, d)| d == depth) {
                    fn_stack.pop();
                }
                if mod_stack.last().is_some_and(|(_, d)| *d == depth) {
                    mod_stack.pop();
                }
                if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                    impl_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Punct(';') => {
                pending = None;
            }
            Tok::Ident(id) => {
                match id.as_str() {
                    "fn" => {
                        if let Some(name) = ident_at(toks, i + 1) {
                            pending = Some(Pending::Fn {
                                name: name.to_string(),
                                line: t.line,
                            });
                        }
                        continue;
                    }
                    "mod" => {
                        if pending.is_none() {
                            if let Some(name) = ident_at(toks, i + 1) {
                                pending = Some(Pending::Mod(name.to_string()));
                            }
                        }
                        continue;
                    }
                    "impl" => {
                        // `-> impl Trait` in a signature must not clobber a
                        // pending fn; a real impl item starts from scratch.
                        if pending.is_none() {
                            pending = Some(Pending::Impl(impl_self_ty(toks, i)));
                        }
                        continue;
                    }
                    _ => {}
                }

                // D11 hazards are collected file-wide (statics live at item
                // level, outside any fn body).
                if let Some(what) = hazard_at(toks, i, id) {
                    if hazard_seen.insert((t.line, what.clone())) {
                        syms.shard_hazards.push(Site { line: t.line, what });
                    }
                }

                // D9 raw material, also file-wide (consts can seed too).
                if id == "SimRng"
                    && tok_is(toks, i + 1, ':')
                    && tok_is(toks, i + 2, ':')
                    && ident_at(toks, i + 3) == Some("new")
                    && tok_is(toks, i + 4, '(')
                {
                    let (idents, _lits) = scan_args(toks, i + 4);
                    let derived = idents
                        .iter()
                        .any(|a| a == "derive_seed" || a == "derive_seed_indexed");
                    syms.rng_news.push(RngNew {
                        line: t.line,
                        derived,
                    });
                }
                if (id == "derive_seed" || id == "derive_seed_indexed") && tok_is(toks, i + 1, '(')
                {
                    let (_idents, lits) = scan_args(toks, i + 1);
                    syms.derive_calls.push(DeriveCall {
                        line: t.line,
                        stream: lits.into_iter().next(),
                    });
                }

                // Body-level facts: calls, panics, allocations.
                let Some(&(fn_id, _)) = fn_stack.last() else {
                    continue;
                };
                let f = &mut fns[fn_id];

                // Macros.
                if tok_is(toks, i + 1, '!') {
                    match id.as_str() {
                        "panic" | "todo" | "unimplemented" => f.panics.push(Site {
                            line: t.line,
                            what: format!("{id}!"),
                        }),
                        "vec" | "format" => f.allocs.push(Site {
                            line: t.line,
                            what: format!("{id}!"),
                        }),
                        _ => {}
                    }
                    continue;
                }

                // Calls: `id(`.
                if !tok_is(toks, i + 1, '(') || NOT_CALLS.contains(&id.as_str()) {
                    continue;
                }
                if i >= 1 && tok_is(toks, i - 1, '.') {
                    // Method call.
                    if id == "unwrap" || id == "expect" {
                        f.panics.push(Site {
                            line: t.line,
                            what: format!(".{id}()"),
                        });
                    }
                    if ALLOC_METHODS.contains(&id.as_str()) {
                        f.allocs.push(Site {
                            line: t.line,
                            what: format!(".{id}()"),
                        });
                    }
                    if id == "clone" {
                        if let Some(recv) = (i >= 2).then(|| ident_at(toks, i - 2)).flatten() {
                            if heap_names.contains(recv) {
                                f.allocs.push(Site {
                                    line: t.line,
                                    what: format!("`{recv}.clone()` of a heap type"),
                                });
                            }
                        }
                    }
                    f.calls.push(Call {
                        name: id.clone(),
                        kind: CallKind::Method,
                        line: t.line,
                    });
                } else if i >= 2 && tok_is(toks, i - 1, ':') && tok_is(toks, i - 2, ':') {
                    // Qualified call: take the path segment before `::`.
                    let mut q = (i >= 3)
                        .then(|| ident_at(toks, i - 3))
                        .flatten()
                        .unwrap_or("?")
                        .to_string();
                    if q == "Self" {
                        if let Some((Some(ty), _)) = impl_stack.last() {
                            q = ty.clone();
                        }
                    }
                    let heap_ctor = (HEAP_TYPES.contains(&q.as_str())
                        && (id == "new" || id == "from"))
                        || id == "with_capacity";
                    if heap_ctor {
                        f.allocs.push(Site {
                            line: t.line,
                            what: format!("{q}::{id}"),
                        });
                    }
                    f.calls.push(Call {
                        name: id.clone(),
                        kind: CallKind::Qualified(q),
                        line: t.line,
                    });
                } else {
                    f.calls.push(Call {
                        name: id.clone(),
                        kind: CallKind::Free,
                        line: t.line,
                    });
                }
            }
            _ => {}
        }
    }
    syms
}

/// Appends inline `mod` nesting to the file's module path.
fn full_module(base: &str, mods: &[(String, u32)]) -> String {
    let mut out = base.to_string();
    for (m, _) in mods {
        out.push_str("::");
        out.push_str(m);
    }
    out
}

/// Extracts the self type from an `impl` header: the last path segment
/// before `{`, taking the `for Type` side of trait impls and skipping
/// generics.
fn impl_self_ty(toks: &[SpannedTok], impl_idx: usize) -> Option<String> {
    let mut angle = 0i32;
    let mut last: Option<String> = None;
    for t in toks.iter().skip(impl_idx + 1).take(64) {
        match &t.tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('{') | Tok::Punct(';') => break,
            Tok::Ident(s) if angle == 0 => match s.as_str() {
                "for" => last = None, // self type follows
                "mut" | "dyn" | "const" => {}
                _ => last = Some(s.clone()),
            },
            _ => {}
        }
    }
    last
}

/// Shard-safety hazard classification for one ident (D11 raw material).
fn hazard_at(toks: &[SpannedTok], i: usize, id: &str) -> Option<String> {
    match id {
        // After the lexer's lifetime handling, a `static` ident is always
        // a static item, never `&'static`.
        "static" => {
            if ident_at(toks, i + 1) == Some("mut") {
                Some("`static mut` item".to_string())
            } else {
                Some("non-const `static` item".to_string())
            }
        }
        "thread_local" if tok_is(toks, i + 1, '!') => Some("`thread_local!` state".to_string()),
        "Rc" | "RefCell"
            if tok_is(toks, i + 1, '<')
                || (tok_is(toks, i + 1, ':') && tok_is(toks, i + 2, ':')) =>
        {
            Some(format!("`{id}` shared-ownership type"))
        }
        _ => None,
    }
}

/// Collects idents and string literals inside a balanced `(..)` group
/// starting at `open` (which must be the `(`).
fn scan_args(toks: &[SpannedTok], open: usize) -> (Vec<String>, Vec<String>) {
    let mut idents = Vec::new();
    let mut lits = Vec::new();
    let mut depth = 0i32;
    for t in toks.iter().skip(open) {
        match &t.tok {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(s) => idents.push(s.clone()),
            Tok::Lit(s) => lits.push(s.clone()),
            _ => {}
        }
    }
    (idents, lits)
}

/// Finds bindings declared with one of `types` as their type or
/// initialiser: `name: Vec<..>`, `name: &mut String`, and
/// `let name = Vec::new()`. Shared by D3 (hash collections) and D10
/// (heap clones).
pub(crate) fn collect_typed_names(toks: &[SpannedTok], types: &[&str]) -> BTreeSet<String> {
    const NOT_BINDINGS: [&str; 9] = [
        "use", "pub", "in", "let", "mut", "fn", "return", "as", "where",
    ];
    // Path/ref tokens walkable-over between the binding name and the type.
    const PATH_SEGS: [&str; 9] = [
        "std",
        "alloc",
        "collections",
        "vec",
        "string",
        "boxed",
        "rc",
        "sync",
        "mut",
    ];
    let mut names = BTreeSet::new();
    for (k, t) in toks.iter().enumerate() {
        let Some(id) = t.tok.ident() else { continue };
        if !types.contains(&id) {
            continue;
        }
        let mut j = k;
        while j > 0 {
            let skip = match &toks[j - 1].tok {
                Tok::Punct(':') | Tok::Punct('&') => true,
                Tok::Ident(s) => PATH_SEGS.contains(&s.as_str()),
                _ => false,
            };
            if !skip {
                break;
            }
            j -= 1;
        }
        let binding = if j < k && j >= 1 {
            // Ascription form: the run began with the `name :` colon.
            toks[j - 1].tok.ident()
        } else if j == k && k >= 2 && toks[k - 1].tok.is('=') {
            // Initialiser form: `name = Vec::new()`.
            toks[k - 2].tok.ident()
        } else {
            None
        };
        if let Some(name) = binding {
            if !NOT_BINDINGS.contains(&name) {
                names.insert(name.to_string());
            }
        }
    }
    names
}

fn tok_is(toks: &[SpannedTok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.tok.is(c))
}

fn ident_at(toks: &[SpannedTok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| t.tok.ident())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(path: &str, src: &str) -> (Workspace, usize) {
        let lexed = lex(src);
        let ws = Workspace::build(&[(path.to_string(), lexed.toks)]);
        (ws, 0)
    }

    #[test]
    fn crate_keys_and_modules() {
        assert_eq!(crate_key("crates/core/src/datapath/be.rs"), "core");
        assert_eq!(crate_key("src/lib.rs"), "nezha");
        assert_eq!(
            crate_key("crates/lint/tests/fixtures/d8_violation/entry.rs"),
            "fixture:d8_violation"
        );
        assert_eq!(
            crate_key("crates/lint/tests/fixtures/d1_clean.rs"),
            "fixture:d1_clean.rs"
        );
        assert_eq!(
            module_of("crates/core/src/datapath/be.rs"),
            "core::datapath::be"
        );
        assert_eq!(module_of("crates/sim/src/lib.rs"), "sim");
        assert_eq!(module_of("src/prelude.rs"), "nezha::prelude");
    }

    #[test]
    fn fns_methods_and_calls_are_indexed() {
        let src = "
            fn free_one(x: u32) -> u32 { helper(x) }
            impl Widget {
                fn method_one(&self) { self.other(); Widget::assoc(); }
            }
            impl fmt::Debug for Widget {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { todo!() }
            }
        ";
        let (ws, _) = index("crates/core/src/x.rs", src);
        let names: Vec<&str> = ws.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["free_one", "method_one", "fmt"]);
        assert_eq!(ws.fns[1].self_ty.as_deref(), Some("Widget"));
        assert_eq!(ws.fns[2].self_ty.as_deref(), Some("Widget"));
        let c = &ws.fns[0].calls[0];
        assert_eq!((c.name.as_str(), &c.kind), ("helper", &CallKind::Free));
        let kinds: Vec<&CallKind> = ws.fns[1].calls.iter().map(|c| &c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                &CallKind::Method,
                &CallKind::Qualified("Widget".to_string())
            ]
        );
        assert_eq!(ws.fns[2].panics[0].what, "todo!");
    }

    #[test]
    fn panic_and_alloc_sites() {
        let src = "
            fn f(o: Option<u32>, s: String) -> u32 {
                let v = Vec::new();
                let t = format!(\"x{}\", 1);
                let c = s.clone();
                o.unwrap()
            }
        ";
        let (ws, _) = index("crates/core/src/x.rs", src);
        let f = &ws.fns[0];
        let allocs: Vec<&str> = f.allocs.iter().map(|s| s.what.as_str()).collect();
        assert!(allocs.contains(&"Vec::new"));
        assert!(allocs.contains(&"format!"));
        assert!(allocs.iter().any(|w| w.contains("s.clone()")));
        assert_eq!(f.panics[0].what, ".unwrap()");
    }

    #[test]
    fn clone_of_non_heap_binding_is_not_an_alloc() {
        let src = "fn f(id: ServerId) -> ServerId { id.clone() }";
        let (ws, _) = index("crates/core/src/x.rs", src);
        assert!(ws.fns[0].allocs.is_empty());
    }

    #[test]
    fn rng_and_derive_sites() {
        let src = "
            fn good(seed: u64) -> SimRng { SimRng::new(derive_seed(seed, \"cluster.faults\")) }
            fn bad() -> SimRng { SimRng::new(42) }
        ";
        let (ws, _) = index("crates/core/src/x.rs", src);
        let f = &ws.files[0];
        assert_eq!(f.rng_news.len(), 2);
        assert!(f.rng_news[0].derived);
        assert!(!f.rng_news[1].derived);
        assert_eq!(f.derive_calls[0].stream.as_deref(), Some("cluster.faults"));
    }

    #[test]
    fn shard_hazards() {
        let src = "
            static mut COUNTER: u64 = 0;
            static TABLE: u8 = 3;
            fn f() { let x = Rc::new(RefCell::new(1)); }
            fn ok(s: &'static str) -> &'static str { s }
        ";
        let (ws, _) = index("crates/core/src/x.rs", src);
        let whats: Vec<&str> = ws.files[0]
            .shard_hazards
            .iter()
            .map(|s| s.what.as_str())
            .collect();
        assert!(whats.contains(&"`static mut` item"));
        assert!(whats.contains(&"non-const `static` item"));
        assert!(whats.iter().any(|w| w.contains("`Rc`")));
        assert!(whats.iter().any(|w| w.contains("`RefCell`")));
        // `&'static` contributes nothing.
        assert_eq!(whats.iter().filter(|w| w.contains("non-const")).count(), 1);
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let src = "mod inner { fn deep() { leaf(); } }";
        let (ws, _) = index("crates/core/src/x.rs", src);
        assert_eq!(ws.fns[0].module, "core::x::inner");
    }

    #[test]
    fn impl_trait_in_return_position_keeps_the_fn() {
        let src = "fn f() -> impl Iterator<Item = u32> { helper() }";
        let (ws, _) = index("crates/core/src/x.rs", src);
        assert_eq!(ws.fns.len(), 1);
        assert_eq!(ws.fns[0].name, "f");
        assert_eq!(ws.fns[0].calls[0].name, "helper");
    }
}

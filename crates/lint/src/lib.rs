//! `nezha-lint` — a workspace determinism & panic-safety static-analysis
//! pass for the Nezha reproduction.
//!
//! Every paper figure depends on the simulator being bit-deterministic
//! under a fixed seed. These rules make that a statically enforced
//! invariant instead of a convention:
//!
//! | rule | severity | what it forbids |
//! |------|----------|-----------------|
//! | D1   | error    | `Instant::now` / `SystemTime::now` in sim-visible crates |
//! | D2   | error    | `thread_rng` / `from_entropy` / OS-entropy RNGs outside `nezha-sim::rng` |
//! | D3   | error    | iteration over `HashMap`/`HashSet` bindings in sim-visible crates |
//! | D4   | error    | `unwrap`/`expect`/`panic!`/`todo!` in control-plane modules |
//! | D5   | warning  | `MetricsRegistry` handle acquisition outside a startup path |
//! | D6   | warning  | `Profiler` stage-handle interning outside a startup path |
//! | D7   | error    | direct telemetry/trace/profiler access in datapath handlers (must go through `HandlerCtx`) |
//! | D8   | error    | panic site transitively reachable from a control-plane entry point |
//! | D9   | error    | `SimRng` seeded outside `derive_seed`, or a stream name reused across modules |
//! | D10  | error    | heap allocation on a hot path (ladder drain, DenseMap probe, NSH codec, datapath handlers) |
//! | D11  | error    | `static mut` / statics / `thread_local!` / `Rc` / `RefCell` in shard-candidate code |
//! | D12  | error    | direct rule-table field access outside stage impls / graph construction / control-plane table management |
//!
//! Escape hatch: `// nezha-lint: allow(D3): <justification>` on the
//! violating line or the line above. The justification is mandatory —
//! a bare `allow` is itself an error, and an allow whose finding has
//! disappeared is reported by `--stale-allows`.
//!
//! The workspace builds fully offline, so there is no `syn`: the analyzer
//! is a hand-rolled lexer feeding two passes. Pass 1 (`symbols`,
//! `callgraph`) builds a workspace-wide symbol index and a conservative
//! intra-crate call graph from the token streams; pass 2 runs the
//! D1–D7 + D12 token-pattern rules (`rules`) and the D8–D11
//! call-graph/dataflow rules (`graph_rules`). See DESIGN.md §9c for the
//! architecture and the false-negative envelope.

pub mod callgraph;
pub mod graph_rules;
pub mod lexer;
pub mod rules;
pub mod symbols;

pub use rules::{check_file, Severity, Violation, ALL_RULES};

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into during a workspace scan.
/// `fixtures` holds intentionally-violating linter test inputs.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

/// Top-level directories scanned in `--workspace` mode.
const WORKSPACE_ROOTS: [&str; 4] = ["src", "crates", "tests", "examples"];

/// Collects every lintable `.rs` file under the workspace root, in
/// deterministic (sorted) order.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in WORKSPACE_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`].
pub fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The result of a two-pass [`analyze`] run.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Rule violations in the target files, after allow processing.
    pub violations: Vec<Violation>,
    /// Allow directives in the target files that suppressed nothing
    /// (`stale-allow` warnings; reported under `--stale-allows`).
    pub stale_allows: Vec<Violation>,
}

/// Two-pass analysis: pass 1 builds the workspace-wide symbol index and
/// call graph over *every* workspace file plus the targets (so D8–D11
/// can resolve cross-file calls); pass 2 runs D1–D7 token rules and
/// D8–D11 graph rules, reporting only violations in `targets`.
pub fn analyze(root: &Path, targets: &[PathBuf]) -> io::Result<Analysis> {
    // Index set = workspace ∪ targets, deduped by workspace-relative path.
    let mut index: Vec<PathBuf> = collect_workspace_files(root).unwrap_or_default();
    index.extend(targets.iter().cloned());
    let mut seen_rel: BTreeSet<String> = BTreeSet::new();
    let target_rels: BTreeSet<String> = targets.iter().map(|p| rel_path(root, p)).collect();

    // Per-file lexed state, in deterministic order.
    let mut rels: Vec<String> = Vec::new();
    let mut allows: Vec<BTreeMap<u32, Vec<lexer::AllowDirective>>> = Vec::new();
    let mut stripped: Vec<(String, Vec<lexer::SpannedTok>)> = Vec::new();
    index.sort();
    for f in &index {
        let rel = rel_path(root, f);
        if !seen_rel.insert(rel.clone()) {
            continue;
        }
        let src = std::fs::read_to_string(f)?;
        let lexed = lexer::lex(&src);
        allows.push(lexed.allows);
        stripped.push((rel.clone(), rules::strip_tests(&lexed.toks)));
        rels.push(rel);
    }

    // Pass 1: symbol index + call graph over everything.
    let ws = symbols::Workspace::build(&stripped);
    let graph = callgraph::build(&ws);

    // Pass 2: graph rules (workspace-wide), grouped by file.
    let mut graph_by_file: BTreeMap<String, Vec<Violation>> = BTreeMap::new();
    for v in graph_rules::check_workspace(&ws, &graph) {
        graph_by_file.entry(v.file.clone()).or_default().push(v);
    }

    // Token rules + allow processing per target file.
    let mut out = Analysis::default();
    for (i, rel) in rels.iter().enumerate() {
        if !target_rels.contains(rel) {
            continue;
        }
        let mut raw = rules::token_rules(rel, &stripped[i].1);
        raw.extend(graph_by_file.remove(rel).unwrap_or_default());
        let mut used: BTreeSet<(u32, usize)> = BTreeSet::new();
        out.violations
            .extend(rules::apply_allows_tracked(raw, &allows[i], &mut used));
        for (line, ds) in &allows[i] {
            for (idx, d) in ds.iter().enumerate() {
                if used.contains(&(*line, idx)) {
                    continue;
                }
                out.stale_allows.push(Violation {
                    file: rel.clone(),
                    line: *line,
                    rule: "stale-allow",
                    severity: Severity::Warning,
                    message: format!(
                        "stale `allow({})` — no matching violation on this or the next line",
                        d.rules.join(", ")
                    ),
                    hint: "the suppressed finding is gone; delete the allow comment",
                });
            }
        }
    }
    let key = |v: &Violation| (v.file.clone(), v.line, v.rule);
    out.violations.sort_by_key(key);
    out.stale_allows.sort_by_key(key);
    Ok(out)
}

/// Lints the given files, reporting paths relative to `root`.
pub fn scan_files(root: &Path, files: &[PathBuf]) -> io::Result<Vec<Violation>> {
    Ok(analyze(root, files)?.violations)
}

/// Workspace-relative path with forward slashes (falls back to the full
/// path when `file` is not under `root`).
pub fn rel_path(root: &Path, file: &Path) -> String {
    let p = file.strip_prefix(root).unwrap_or(file);
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Human-readable diagnostics, one block per violation.
pub fn render_human(violations: &[Violation]) -> String {
    let mut s = String::new();
    for v in violations {
        s.push_str(&format!(
            "{}: [{}] {}:{}: {}\n    fix: {}\n",
            v.severity, v.rule, v.file, v.line, v.message, v.hint
        ));
    }
    s
}

/// Machine-readable JSON: `{"violations": [...], "errors": N, "warnings": N}`.
/// Hand-rolled — the lint crate deliberately has zero dependencies.
pub fn render_json(violations: &[Violation]) -> String {
    let mut items = Vec::with_capacity(violations.len());
    for v in violations {
        items.push(format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\
             \"message\":\"{}\",\"hint\":\"{}\"}}",
            json_escape(&v.file),
            v.line,
            v.rule,
            v.severity,
            json_escape(&v.message),
            json_escape(v.hint)
        ));
    }
    let errors = violations
        .iter()
        .filter(|v| v.severity == Severity::Error)
        .count();
    let warnings = violations.len() - errors;
    format!(
        "{{\"violations\":[{}],\"errors\":{},\"warnings\":{}}}\n",
        items.join(","),
        errors,
        warnings
    )
}

/// GitHub Actions workflow-command annotations: one `::error`/`::warning`
/// line per violation, surfaced inline on the PR diff by the runner.
pub fn render_github(violations: &[Violation]) -> String {
    let mut s = String::new();
    for v in violations {
        let level = match v.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        s.push_str(&format!(
            "::{level} file={},line={},title=nezha-lint {}::{} (fix: {})\n",
            v.file,
            v.line,
            v.rule,
            gh_escape(&v.message),
            gh_escape(v.hint)
        ));
    }
    s
}

/// Workflow-command data escaping per the Actions toolkit: `%`, CR and LF
/// must be percent-encoded or the runner truncates the message.
fn gh_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn rel_path_normalises() {
        let root = Path::new("/w");
        assert_eq!(
            rel_path(root, Path::new("/w/crates/core/src/a.rs")),
            "crates/core/src/a.rs"
        );
    }
}

//! `nezha-lint` — a workspace determinism & panic-safety static-analysis
//! pass for the Nezha reproduction.
//!
//! Every paper figure depends on the simulator being bit-deterministic
//! under a fixed seed. These rules make that a statically enforced
//! invariant instead of a convention:
//!
//! | rule | severity | what it forbids |
//! |------|----------|-----------------|
//! | D1   | error    | `Instant::now` / `SystemTime::now` in sim-visible crates |
//! | D2   | error    | `thread_rng` / `from_entropy` / OS-entropy RNGs outside `nezha-sim::rng` |
//! | D3   | error    | iteration over `HashMap`/`HashSet` bindings in sim-visible crates |
//! | D4   | error    | `unwrap`/`expect`/`panic!`/`todo!` in control-plane modules |
//! | D5   | warning  | `MetricsRegistry` handle acquisition outside a startup path |
//! | D6   | warning  | `Profiler` stage-handle interning outside a startup path |
//! | D7   | error    | direct telemetry/trace/profiler access in datapath handlers (must go through `HandlerCtx`) |
//!
//! Escape hatch: `// nezha-lint: allow(D3): <justification>` on the
//! violating line or the line above. The justification is mandatory —
//! a bare `allow` is itself an error.
//!
//! The workspace builds fully offline, so there is no `syn`: the scanner
//! is a hand-rolled lexer + token-pattern rule engine (see `lexer`,
//! `rules`).

pub mod lexer;
pub mod rules;

pub use rules::{check_file, Severity, Violation};

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into during a workspace scan.
/// `fixtures` holds intentionally-violating linter test inputs.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

/// Top-level directories scanned in `--workspace` mode.
const WORKSPACE_ROOTS: [&str; 4] = ["src", "crates", "tests", "examples"];

/// Collects every lintable `.rs` file under the workspace root, in
/// deterministic (sorted) order.
pub fn collect_workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in WORKSPACE_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Recursively collects `.rs` files under `dir`, skipping [`SKIP_DIRS`].
pub fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default();
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints the given files, reporting paths relative to `root`.
pub fn scan_files(root: &Path, files: &[PathBuf]) -> io::Result<Vec<Violation>> {
    let mut all = Vec::new();
    for f in files {
        let src = std::fs::read_to_string(f)?;
        let rel = rel_path(root, f);
        all.extend(check_file(&rel, &src));
    }
    all.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(all)
}

/// Workspace-relative path with forward slashes (falls back to the full
/// path when `file` is not under `root`).
pub fn rel_path(root: &Path, file: &Path) -> String {
    let p = file.strip_prefix(root).unwrap_or(file);
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Human-readable diagnostics, one block per violation.
pub fn render_human(violations: &[Violation]) -> String {
    let mut s = String::new();
    for v in violations {
        s.push_str(&format!(
            "{}: [{}] {}:{}: {}\n    fix: {}\n",
            v.severity, v.rule, v.file, v.line, v.message, v.hint
        ));
    }
    s
}

/// Machine-readable JSON: `{"violations": [...], "errors": N, "warnings": N}`.
/// Hand-rolled — the lint crate deliberately has zero dependencies.
pub fn render_json(violations: &[Violation]) -> String {
    let mut items = Vec::with_capacity(violations.len());
    for v in violations {
        items.push(format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"severity\":\"{}\",\
             \"message\":\"{}\",\"hint\":\"{}\"}}",
            json_escape(&v.file),
            v.line,
            v.rule,
            v.severity,
            json_escape(&v.message),
            json_escape(v.hint)
        ));
    }
    let errors = violations
        .iter()
        .filter(|v| v.severity == Severity::Error)
        .count();
    let warnings = violations.len() - errors;
    format!(
        "{{\"violations\":[{}],\"errors\":{},\"warnings\":{}}}\n",
        items.join(","),
        errors,
        warnings
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn rel_path_normalises() {
        let root = Path::new("/w");
        assert_eq!(
            rel_path(root, Path::new("/w/crates/core/src/a.rs")),
            "crates/core/src/a.rs"
        );
    }
}

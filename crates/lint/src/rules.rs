//! The D1–D7 + D12 determinism, panic-safety & layering rules, plus the
//! shared rule registry and allow-directive machinery used by the graph
//! rules (D8–D11, see `graph_rules`).
//!
//! D1–D7 and D12 are token-pattern matches over the lexed stream with a
//! path-based scope. Test items (`#[test]` fns, `#[cfg(test)]` mods) are
//! stripped before matching: the rules guard simulation-visible and
//! control-plane behaviour, not assertions about it.

use std::collections::BTreeSet;
use std::fmt;

use crate::lexer::{lex, AllowDirective, SpannedTok, Tok};

/// Diagnostic severity. Errors always fail the run; warnings fail it
/// only under `--deny-warnings`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Reported, but does not fail the run by default.
    Warning,
    /// Fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D1`..`D11`, or `stale-allow`).
    pub rule: &'static str,
    /// Severity after allow-list processing.
    pub severity: Severity,
    /// What was found.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

/// Registry entry for one rule — drives `--help`, the README table, and
/// the meta-test that keeps every rule exercised by fixtures.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Rule id (`D1`..`D11`).
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// One-line summary of what the rule forbids.
    pub summary: &'static str,
}

/// Every rule the analyzer knows, in id order.
pub const ALL_RULES: [RuleInfo; 12] = [
    RuleInfo {
        id: "D1",
        severity: Severity::Error,
        summary: "Instant::now / SystemTime::now in sim-visible crates",
    },
    RuleInfo {
        id: "D2",
        severity: Severity::Error,
        summary: "thread_rng / from_entropy / OS-entropy RNGs outside nezha-sim::rng",
    },
    RuleInfo {
        id: "D3",
        severity: Severity::Error,
        summary: "iteration over HashMap/HashSet bindings in sim-visible crates",
    },
    RuleInfo {
        id: "D4",
        severity: Severity::Error,
        summary: "unwrap/expect/panic!/todo! written directly in control-plane modules",
    },
    RuleInfo {
        id: "D5",
        severity: Severity::Warning,
        summary: "MetricsRegistry handle acquisition outside a startup path",
    },
    RuleInfo {
        id: "D6",
        severity: Severity::Warning,
        summary: "Profiler stage-handle interning outside a startup path",
    },
    RuleInfo {
        id: "D7",
        severity: Severity::Error,
        summary: "direct telemetry/trace/profiler access in datapath handlers (use HandlerCtx)",
    },
    RuleInfo {
        id: "D8",
        severity: Severity::Error,
        summary: "panic site transitively reachable from a control-plane entry point",
    },
    RuleInfo {
        id: "D9",
        severity: Severity::Error,
        summary: "SimRng seeded outside derive_seed, or a stream name reused across modules",
    },
    RuleInfo {
        id: "D10",
        severity: Severity::Error,
        summary: "heap allocation / format! / heap clone on a hot path (ladder drain, \
                  DenseMap probe, NSH codec, datapath handlers)",
    },
    RuleInfo {
        id: "D11",
        severity: Severity::Error,
        summary: "static mut, non-const statics, thread_local!, Rc/RefCell in sim-visible \
                  shard-candidate code",
    },
    RuleInfo {
        id: "D12",
        severity: Severity::Error,
        summary: "direct rule-table field access outside stage impls, graph construction, \
                  or control-plane table management",
    },
];

/// Which rules apply to a given workspace-relative path.
#[derive(Clone, Copy, Debug)]
struct Scope {
    d1: bool,
    d2: bool,
    d3: bool,
    d4: bool,
    d5: bool,
    d6: bool,
    d7: bool,
    d12: bool,
}

/// Crates whose code runs inside the simulation and therefore must be
/// bit-deterministic under a fixed seed.
pub(crate) const SIM_VISIBLE: [&str; 6] = [
    "crates/sim/src/",
    "crates/core/src/",
    "crates/vswitch/src/",
    "crates/types/src/",
    "crates/workloads/src/",
    "crates/baselines/src/",
];

/// Control-plane modules where `NezhaResult` must be used instead of
/// panicking (rule D4).
pub(crate) const CONTROL_PLANE_FILES: [&str; 5] = [
    "cluster.rs",
    "controller.rs",
    "monitor.rs",
    "gateway.rs",
    "migration.rs",
];

/// Exact paths carved out of the old `cluster.rs` monolith that inherit
/// its D4 (no-panic) obligation. Listed by full path so that same-named
/// files in other crates (e.g. `crates/vswitch/src/config.rs`) keep
/// their existing scope.
pub(crate) const CONTROL_PLANE_PATHS: [&str; 3] = [
    "crates/core/src/config.rs",
    "crates/core/src/telemetry.rs",
    "crates/core/src/driver.rs",
];

/// Cross-cutting accessors that datapath handlers must reach through
/// `HandlerCtx` instead of calling directly (rule D7).
const D7_METHODS: [&str; 5] = [
    "metrics",
    "profiler",
    "trace_pkt",
    "profile_handler",
    "profile_fault_drop",
];

/// Methods whose call on a `HashMap`/`HashSet` binding observes the
/// (randomised) iteration order.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
];

/// `MetricsRegistry` methods that register (or string-look-up) a handle.
const REGISTRY_METHODS: [&str; 5] = ["counter", "gauge", "histogram", "series", "log_histogram"];

/// `Profiler` methods that intern (string-look-up) a stage handle.
const STAGE_METHODS: [&str; 1] = ["stage"];

const HINT_D1: &str = "take time from the simulated clock (nezha-sim SimTime / engine now())";
const HINT_D2: &str = "construct RNGs from the run seed via nezha-sim's SimRng";
const HINT_D3: &str =
    "use BTreeMap/BTreeSet (or sort keys first), or allow-list with a justification";
const HINT_D4: &str = "return a typed NezhaResult error instead of panicking in the control plane";
const HINT_D5: &str =
    "pre-register the handle in new()/register()/attach_metrics() and store it; registry \
     lookups are string-keyed and do not belong on the simulation path";
const HINT_D6: &str =
    "intern the StageHandle in new()/register() and store it (e.g. in a StageSet); \
     `.stage(\"…\")` interns a string and does not belong in a per-packet hot loop";
const HINT_D7: &str = "route metrics/trace/profiler/fault access through the HandlerCtx methods \
     (ctx.span/ctx.trace/ctx.charge/ctx.drop_pkt/…); the plumbing lives in \
     crates/core/src/datapath/ctx.rs";
const HINT_D12: &str =
    "read rule tables from inside a Stage impl (env.vnic().tables) or drive the compiled \
     stage graph (SwitchGraphs / lookup_graph); ad-hoc table reads fork the pipeline \
     semantics the graph is the single source of truth for";

/// The per-vNIC rule-table fields whose direct access rule D12 polices.
const D12_TABLES: [&str; 8] = [
    "acl",
    "route",
    "qos",
    "nat",
    "policy",
    "mirror",
    "pbr",
    "vnic_server",
];

/// Files sanctioned to touch `tables.*` fields directly: the stage impls
/// and graph construction (`crates/vswitch/src/stage/`), the tables'
/// owner (`vnic.rs` builds and size-accounts them), and the table
/// implementations themselves.
fn d12_exempt(path: &str) -> bool {
    path.starts_with("crates/vswitch/src/stage/")
        || path.starts_with("crates/vswitch/src/tables/")
        || path == "crates/vswitch/src/vnic.rs"
}

fn scope_for(path: &str) -> Scope {
    // Fixture files exercise every rule regardless of where they live.
    if path.contains("fixtures") {
        return Scope {
            d1: true,
            d2: true,
            d3: true,
            d4: true,
            d5: true,
            d6: true,
            d7: true,
            d12: true,
        };
    }
    let sim_visible = SIM_VISIBLE.iter().any(|p| path.starts_with(p));
    let file_name = path.rsplit('/').next().unwrap_or(path);
    let datapath = path.starts_with("crates/core/src/datapath/");
    let control_plane =
        CONTROL_PLANE_FILES.contains(&file_name) || CONTROL_PLANE_PATHS.contains(&path);
    Scope {
        d1: sim_visible || path.starts_with("crates/bench/src/"),
        // `nezha-sim::rng` is the one sanctioned home for entropy plumbing.
        d2: path != "crates/sim/src/rng.rs",
        d3: sim_visible,
        d4: sim_visible && (control_plane || datapath),
        // metrics.rs implements the registry itself; the obs layer reads
        // closed `WindowRecord`s through same-named accessors, not the
        // string-keyed registry.
        d5: sim_visible
            && path != "crates/sim/src/metrics.rs"
            && !path.starts_with("crates/sim/src/obs/"),
        // profile.rs implements the profiler itself.
        d6: sim_visible && path != "crates/sim/src/profile.rs",
        // ctx.rs *is* the sanctioned plumbing layer.
        d7: datapath && !path.ends_with("ctx.rs"),
        // Control-plane files *manage* tables (rule pushes, vNIC moves);
        // everything else must go through the compiled stage graph.
        d12: sim_visible && !control_plane && !d12_exempt(path),
    }
}

/// Runs the token-pattern rules (D1–D7) over one file, applying allow
/// directives. The graph rules (D8–D11) need the whole workspace index —
/// use `analyze` in the crate root for the full two-pass run.
pub fn check_file(rel_path: &str, src: &str) -> Vec<Violation> {
    let lexed = lex(src);
    let toks = strip_tests(&lexed.toks);
    let raw = token_rules(rel_path, &toks);
    let mut used = BTreeSet::new();
    apply_allows_tracked(raw, &lexed.allows, &mut used)
}

/// The D1–D7 token-pattern pass: raw violations, before allow directives.
pub(crate) fn token_rules(rel_path: &str, toks: &[SpannedTok]) -> Vec<Violation> {
    let scope = scope_for(rel_path);
    let hash_names = if scope.d3 {
        crate::symbols::collect_typed_names(toks, &["HashMap", "HashSet"])
    } else {
        BTreeSet::new()
    };

    let mut raw: Vec<Violation> = Vec::new();
    let mut push = |line: u32, rule: &'static str, severity: Severity, message: String, hint| {
        raw.push(Violation {
            file: rel_path.to_string(),
            line,
            rule,
            severity,
            message,
            hint,
        });
    };

    // Function-name tracking for D5: (name, brace depth of the body).
    let mut fn_stack: Vec<(String, u32)> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut depth: u32 = 0;

    for (i, t) in toks.iter().enumerate() {
        match &t.tok {
            Tok::Punct('{') => {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    fn_stack.push((name, depth));
                }
            }
            Tok::Punct('}') => {
                if let Some((_, d)) = fn_stack.last() {
                    if *d == depth {
                        fn_stack.pop();
                    }
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Punct(';') => {
                // Trait method declarations have no body.
                pending_fn = None;
            }
            Tok::Ident(id) => {
                if id == "fn" {
                    if let Some(name) = toks.get(i + 1).and_then(|t| t.tok.ident()) {
                        pending_fn = Some(name.to_string());
                    }
                    continue;
                }

                // D1: wall-clock reads.
                if scope.d1
                    && (id == "Instant" || id == "SystemTime")
                    && tok_is(toks, i + 1, ':')
                    && tok_is(toks, i + 2, ':')
                    && ident_at(toks, i + 3) == Some("now")
                {
                    push(
                        t.line,
                        "D1",
                        Severity::Error,
                        format!("wall-clock read `{id}::now()` in sim-visible code"),
                        HINT_D1,
                    );
                }

                // D2: OS-entropy RNG construction.
                if scope.d2 {
                    if id == "thread_rng" || id == "from_entropy" || id == "OsRng" {
                        push(
                            t.line,
                            "D2",
                            Severity::Error,
                            format!("unseeded RNG source `{id}` outside nezha-sim::rng"),
                            HINT_D2,
                        );
                    } else if id == "rand"
                        && tok_is(toks, i + 1, ':')
                        && tok_is(toks, i + 2, ':')
                        && ident_at(toks, i + 3) == Some("random")
                    {
                        push(
                            t.line,
                            "D2",
                            Severity::Error,
                            "unseeded RNG source `rand::random` outside nezha-sim::rng".to_string(),
                            HINT_D2,
                        );
                    }
                }

                // D3: order-visible iteration over a hash collection.
                if scope.d3 && hash_names.contains(id.as_str()) && tok_is(toks, i + 1, '.') {
                    if let Some(m) = ident_at(toks, i + 2) {
                        if ITER_METHODS.contains(&m) && tok_is(toks, i + 3, '(') {
                            push(
                                t.line,
                                "D3",
                                Severity::Error,
                                format!("iteration `{id}.{m}()` over a HashMap/HashSet binding"),
                                HINT_D3,
                            );
                        }
                    }
                }
                if scope.d3 && id == "in" {
                    if let Some((name, line)) = for_loop_hash_target(toks, i, &hash_names) {
                        push(
                            line,
                            "D3",
                            Severity::Error,
                            format!("`for … in` over HashMap/HashSet binding `{name}`"),
                            HINT_D3,
                        );
                    }
                }

                // D4: panics in the control plane.
                if scope.d4 {
                    if (id == "unwrap" || id == "expect")
                        && tok_is(toks, i.wrapping_sub(1), '.')
                        && i >= 1
                        && tok_is(toks, i + 1, '(')
                    {
                        push(
                            t.line,
                            "D4",
                            Severity::Error,
                            format!("`.{id}()` in control-plane code"),
                            HINT_D4,
                        );
                    }
                    if (id == "panic" || id == "todo") && tok_is(toks, i + 1, '!') {
                        push(
                            t.line,
                            "D4",
                            Severity::Error,
                            format!("`{id}!` in control-plane code"),
                            HINT_D4,
                        );
                    }
                }

                // D5: registry handle acquisition outside a startup path.
                if scope.d5
                    && REGISTRY_METHODS.contains(&id.as_str())
                    && i >= 1
                    && tok_is(toks, i - 1, '.')
                    && tok_is(toks, i + 1, '(')
                {
                    let in_startup = fn_stack
                        .last()
                        .map(|(f, _)| is_startup_fn(f))
                        .unwrap_or(false);
                    if !in_startup {
                        let fname = fn_stack
                            .last()
                            .map(|(f, _)| f.as_str())
                            .unwrap_or("<top level>");
                        push(
                            t.line,
                            "D5",
                            Severity::Warning,
                            format!(
                                "metrics handle `.{id}(..)` acquired in `{fname}`, not a \
                                 startup path"
                            ),
                            HINT_D5,
                        );
                    }
                }

                // D6: profiler stage-handle interning outside a startup path.
                if scope.d6
                    && STAGE_METHODS.contains(&id.as_str())
                    && i >= 1
                    && tok_is(toks, i - 1, '.')
                    && tok_is(toks, i + 1, '(')
                {
                    let in_startup = fn_stack
                        .last()
                        .map(|(f, _)| is_startup_fn(f))
                        .unwrap_or(false);
                    if !in_startup {
                        let fname = fn_stack
                            .last()
                            .map(|(f, _)| f.as_str())
                            .unwrap_or("<top level>");
                        push(
                            t.line,
                            "D6",
                            Severity::Warning,
                            format!(
                                "profiler stage handle `.{id}(..)` interned in `{fname}`, \
                                 not a startup path"
                            ),
                            HINT_D6,
                        );
                    }
                }

                // D7: datapath handlers bypassing HandlerCtx to reach the
                // telemetry plumbing directly.
                if scope.d7 {
                    if id == "tel" && i >= 1 && tok_is(toks, i - 1, '.') {
                        push(
                            t.line,
                            "D7",
                            Severity::Error,
                            "direct `.tel` telemetry access in a datapath handler".to_string(),
                            HINT_D7,
                        );
                    }
                    if D7_METHODS.contains(&id.as_str())
                        && i >= 1
                        && tok_is(toks, i - 1, '.')
                        && tok_is(toks, i + 1, '(')
                    {
                        push(
                            t.line,
                            "D7",
                            Severity::Error,
                            format!(
                                "direct `.{id}(..)` call bypasses HandlerCtx in a datapath handler"
                            ),
                            HINT_D7,
                        );
                    }
                }

                // D12: rule-table fields read outside the stage layer.
                if scope.d12 && id == "tables" && tok_is(toks, i + 1, '.') {
                    if let Some(field) = ident_at(toks, i + 2) {
                        if D12_TABLES.contains(&field) {
                            push(
                                t.line,
                                "D12",
                                Severity::Error,
                                format!(
                                    "direct rule-table access `tables.{field}` outside the \
                                     stage layer"
                                ),
                                HINT_D12,
                            );
                        }
                    }
                }
            }
            _ => {}
        }
    }

    raw
}

/// True when `name` is a recognised construction/registration function in
/// which registry-handle acquisition is sanctioned.
fn is_startup_fn(name: &str) -> bool {
    name == "new"
        || name.starts_with("new_")
        || name.starts_with("with_")
        || name.contains("register")
        || name == "attach_metrics"
        || name == "default"
}

fn tok_is(toks: &[SpannedTok], i: usize, c: char) -> bool {
    toks.get(i).is_some_and(|t| t.tok.is(c))
}

fn ident_at(toks: &[SpannedTok], i: usize) -> Option<&str> {
    toks.get(i).and_then(|t| t.tok.ident())
}

/// Matches `for … in [&][mut] [recv.]*NAME {` where NAME is a known hash
/// binding (`recv` covers `self.`, `s.state.` etc.); returns the binding
/// name and line.
fn for_loop_hash_target(
    toks: &[SpannedTok],
    in_idx: usize,
    names: &BTreeSet<String>,
) -> Option<(String, u32)> {
    let mut j = in_idx + 1;
    while tok_is(toks, j, '&') || ident_at(toks, j) == Some("mut") {
        j += 1;
    }
    while ident_at(toks, j).is_some() && tok_is(toks, j + 1, '.') {
        j += 2;
    }
    let name = ident_at(toks, j)?;
    if names.contains(name) && tok_is(toks, j + 1, '{') {
        return Some((name.to_string(), toks[j].line));
    }
    None
}

/// Removes `#[test]` / `#[cfg(test)]` items (attribute + body) from the
/// token stream. `#[cfg(not(test))]` is kept.
pub(crate) fn strip_tests(toks: &[SpannedTok]) -> Vec<SpannedTok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    let n = toks.len();
    while i < n {
        if toks[i].tok.is('#') && tok_is(toks, i + 1, '[') {
            // Scan the balanced attribute, noting `test` / `not` idents.
            let mut j = i + 2;
            let mut depth = 1u32;
            let mut has_test = false;
            let mut has_not = false;
            while j < n && depth > 0 {
                match &toks[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(s) if s == "test" => has_test = true,
                    Tok::Ident(s) if s == "not" => has_not = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test && !has_not {
                i = skip_item_after_attr(toks, j);
                continue;
            }
            out.extend_from_slice(&toks[i..j]);
            i = j;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// After a test attribute ends at `j`, skips the annotated item: through
/// a `;` (bodyless item) or the item's balanced `{ … }` body.
fn skip_item_after_attr(toks: &[SpannedTok], mut j: usize) -> usize {
    let n = toks.len();
    let mut bracket_depth = 0i32;
    while j < n {
        match &toks[j].tok {
            Tok::Punct('(') | Tok::Punct('[') => bracket_depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => bracket_depth -= 1,
            Tok::Punct(';') if bracket_depth == 0 => return j + 1,
            Tok::Punct('{') if bracket_depth == 0 => {
                let mut bd = 1u32;
                j += 1;
                while j < n && bd > 0 {
                    match &toks[j].tok {
                        Tok::Punct('{') => bd += 1,
                        Tok::Punct('}') => bd -= 1,
                        _ => {}
                    }
                    j += 1;
                }
                return j;
            }
            _ => {}
        }
        j += 1;
    }
    j
}

/// Applies `// nezha-lint: allow(..)` directives: a directive on line L
/// suppresses matching violations on lines L and L+1. An allow without a
/// justification downgrades nothing — it is itself reported as an error.
///
/// Every directive that matched a violation (justified or not) is
/// recorded in `used` as `(directive line, index on that line)`;
/// directives absent from `used` after the run are stale
/// (`--stale-allows`).
pub(crate) fn apply_allows_tracked(
    raw: Vec<Violation>,
    allows: &std::collections::BTreeMap<u32, Vec<AllowDirective>>,
    used: &mut BTreeSet<(u32, usize)>,
) -> Vec<Violation> {
    let mut out = Vec::with_capacity(raw.len());
    for mut v in raw {
        let mut directive: Option<&AllowDirective> = None;
        for line in [v.line.saturating_sub(1), v.line] {
            if let Some(ds) = allows.get(&line) {
                if let Some((idx, d)) = ds
                    .iter()
                    .enumerate()
                    .find(|(_, d)| d.rules.iter().any(|r| r == v.rule))
                {
                    directive = Some(d);
                    used.insert((line, idx));
                }
            }
        }
        match directive {
            Some(d) if d.justified => {} // suppressed
            Some(_) => {
                v.severity = Severity::Error;
                v.message = format!(
                    "allow({}) directive is missing a justification (use \
                     `// nezha-lint: allow({}): <reason>`); underlying: {}",
                    v.rule, v.rule, v.message
                );
                out.push(v);
            }
            None => out.push(v),
        }
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_found(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        check_file(path, src)
            .into_iter()
            .map(|v| (v.rule, v.line))
            .collect()
    }

    #[test]
    fn d1_flags_wall_clock_in_sim_visible_only() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_found("crates/core/src/x.rs", src), vec![("D1", 1)]);
        assert!(rules_found("crates/lint/src/x.rs", src).is_empty());
    }

    #[test]
    fn d2_flags_entropy_everywhere_except_sim_rng() {
        let src = "fn f() { let mut r = thread_rng(); }\n";
        assert_eq!(rules_found("crates/lint/src/x.rs", src), vec![("D2", 1)]);
        assert!(rules_found("crates/sim/src/rng.rs", src).is_empty());
    }

    #[test]
    fn d3_flags_hash_iteration_but_not_btree() {
        let src = "struct S { m: HashMap<u32, u32>, b: BTreeMap<u32, u32> }\n\
                   fn f(s: &S) {\n\
                       for x in &s.b { use_it(x); }\n\
                       let _: Vec<_> = s.m.keys().collect();\n\
                   }\n";
        // NB: `s.m.keys()` — the binding scanned is `m`.
        assert_eq!(rules_found("crates/core/src/x.rs", src), vec![("D3", 4)]);
    }

    #[test]
    fn d3_flags_for_loop_over_map() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   impl S { fn f(&self) { for (k, v) in &self.m { touch(k, v); } } }\n";
        assert_eq!(rules_found("crates/core/src/x.rs", src), vec![("D3", 2)]);
    }

    #[test]
    fn d4_flags_control_plane_panics_only_in_scope() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(
            rules_found("crates/core/src/cluster.rs", src),
            vec![("D4", 1)]
        );
        assert!(rules_found("crates/core/src/be.rs", src).is_empty());
    }

    #[test]
    fn d5_allows_startup_paths() {
        let ok = "impl T { fn register(&mut self, reg: &mut R) { self.h = reg.counter(NAME); } }\n";
        let bad = "impl T { fn tick(&mut self, reg: &mut R) { reg.counter(NAME).inc(); } }\n";
        assert!(rules_found("crates/core/src/x.rs", ok).is_empty());
        assert_eq!(rules_found("crates/core/src/x.rs", bad), vec![("D5", 1)]);
    }

    #[test]
    fn d6_allows_startup_paths_and_exempts_profile_rs() {
        let ok =
            "impl T { fn register(&mut self, p: &Profiler) { self.h = p.stage(\"parse\"); } }\n";
        let bad = "impl T { fn tick(&mut self, p: &Profiler) { let h = p.stage(\"parse\"); } }\n";
        assert!(rules_found("crates/core/src/x.rs", ok).is_empty());
        assert_eq!(rules_found("crates/core/src/x.rs", bad), vec![("D6", 1)]);
        // The profiler's own implementation interns freely.
        assert!(rules_found("crates/sim/src/profile.rs", bad).is_empty());
    }

    #[test]
    fn d7_flags_datapath_handlers_but_not_ctx_or_cluster() {
        let tel = "fn f(ctx: &mut HandlerCtx) { ctx.cl.tel.inc(ctx.cl.tel.misroutes); }\n";
        assert_eq!(
            rules_found("crates/core/src/datapath/be.rs", tel),
            vec![("D7", 1), ("D7", 1)]
        );
        let call = "fn f(cl: &Cluster, pkt: &Packet) { cl.trace_pkt(now, s, pkt, kind); }\n";
        assert_eq!(
            rules_found("crates/core/src/datapath/fe.rs", call),
            vec![("D7", 1)]
        );
        // The plumbing layer itself and code outside datapath/ are exempt.
        assert!(rules_found("crates/core/src/datapath/ctx.rs", tel).is_empty());
        assert!(rules_found("crates/core/src/cluster.rs", tel).is_empty());
    }

    #[test]
    fn d7_does_not_flag_sanctioned_ctx_usage() {
        let src = "fn f(ctx: &mut HandlerCtx, pkt: &Packet) {\n\
                       if !ctx.gate(pkt) { return; }\n\
                       ctx.trace(ctx.now, pkt, TraceEventKind::NshDecap);\n\
                       if ctx.profiler_enabled() { let st = ctx.stages(); }\n\
                   }\n";
        assert!(rules_found("crates/core/src/datapath/dispatch.rs", src).is_empty());
    }

    #[test]
    fn d4_covers_datapath_and_split_out_control_plane_paths() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        for path in [
            "crates/core/src/datapath/dispatch.rs",
            "crates/core/src/config.rs",
            "crates/core/src/telemetry.rs",
            "crates/core/src/driver.rs",
        ] {
            assert_eq!(rules_found(path, src), vec![("D4", 1)], "{path}");
        }
        // Same-named files in other crates keep their old (exempt) scope.
        assert!(rules_found("crates/vswitch/src/config.rs", src).is_empty());
    }

    #[test]
    fn d12_flags_table_reads_outside_the_stage_layer() {
        let src = "fn f(vnic: &Vnic, t: &FiveTuple) { let v = vnic.tables.acl.lookup(t, d); }\n";
        assert_eq!(rules_found("crates/core/src/x.rs", src), vec![("D12", 1)]);
        assert_eq!(
            rules_found("crates/vswitch/src/pipeline.rs", src),
            vec![("D12", 1)]
        );
        // Stage impls, graph construction, the tables' owner, and the
        // table implementations themselves are the sanctioned homes.
        for exempt in [
            "crates/vswitch/src/stage/lookup.rs",
            "crates/vswitch/src/tables/acl.rs",
            "crates/vswitch/src/vnic.rs",
        ] {
            assert!(rules_found(exempt, src).is_empty(), "{exempt}");
        }
        // Control-plane table management (rule pushes) stays direct.
        let push_rule = "fn apply(vnic: &mut Vnic) { vnic.tables.vnic_server.set(a, s); }\n";
        assert!(rules_found("crates/core/src/cluster.rs", push_rule).is_empty());
        // Unknown fields on some other `tables` binding are not flagged.
        let other = "fn f(x: &T) { let n = x.tables.len(); }\n";
        assert!(rules_found("crates/core/src/x.rs", other).is_empty());
    }

    #[test]
    fn test_items_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let t = Instant::now(); }\n}\n";
        assert!(rules_found("crates/core/src/x.rs", src).is_empty());
        let src2 = "#[test]\nfn t() { x.unwrap(); }\n";
        assert!(rules_found("crates/core/src/cluster.rs", src2).is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_skipped() {
        let src = "#[cfg(not(test))]\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_found("crates/core/src/x.rs", src), vec![("D1", 2)]);
    }

    #[test]
    fn fault_module_is_sim_visible_for_determinism_rules() {
        // The chaos engine lives in the sim crate, so a wall-clock read or
        // ambient entropy inside it would silently break seed-for-seed
        // fault replay — D1/D2 must cover it with no allow-list entry.
        let clock = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(
            rules_found("crates/sim/src/fault.rs", clock),
            vec![("D1", 1)]
        );
        let entropy = "fn f() { let mut r = thread_rng(); }\n";
        assert_eq!(
            rules_found("crates/sim/src/fault.rs", entropy),
            vec![("D2", 1)]
        );
    }

    #[test]
    fn justified_allow_suppresses_unjustified_is_error() {
        let good = "fn f() { // nezha-lint: allow(D1): replay tooling needs real time\n\
                    let t = Instant::now(); }\n";
        assert!(rules_found("crates/core/src/x.rs", good).is_empty());
        let bad = "fn f() { // nezha-lint: allow(D1)\nlet t = Instant::now(); }\n";
        let vs = check_file("crates/core/src/x.rs", bad);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("missing a justification"));
    }
}

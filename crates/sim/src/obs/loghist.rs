//! [`LogHistogram`]: a fixed-memory, deterministic, mergeable
//! log-bucketed histogram (HDR-histogram style).
//!
//! [`crate::stats::Samples`] keeps exact values — perfect for end-of-run
//! percentile tables, unusable for a long-running process because memory
//! grows without bound. `LogHistogram` is the streaming complement: a
//! fixed array of counts whose buckets subdivide each power-of-two
//! octave into [`SUB_BUCKETS`] linear sub-buckets, giving a *bounded
//! relative error* on every quantile query (see [`REL_ERROR_BOUND`])
//! from ~30 KB of memory, regardless of how many values are recorded.
//!
//! Determinism and mergeability are load-bearing:
//!
//! - **Bucketing never touches libm.** The bucket index is computed from
//!   the IEEE-754 bit pattern of the value (exponent field + top
//!   mantissa bits), so the same value lands in the same bucket on every
//!   platform, build, and optimization level — no `ln()`/`log2()` whose
//!   last ulp could differ.
//! - **State is pure integer counts plus order-independent extrema.**
//!   Merging two histograms is a bucket-wise `u64` add (plus min/max,
//!   which are associative and commutative), so merging per-shard
//!   histograms at a barrier yields *bit-identical* state to recording
//!   the union into one histogram in any order. That is what lets the
//!   region's window stream be byte-identical at 1/2/4/8 shards.
//! - **Recording is allocation-free.** The bucket array is preallocated
//!   at construction; `record` is an index computation plus a counter
//!   increment (enforced by nezha-lint rule D10).

/// Number of linear sub-buckets per power-of-two octave (2^6).
pub const SUB_BUCKETS: usize = 64;
const SUB_BITS: u32 = 6;
const SUB_MASK: u64 = (SUB_BUCKETS as u64) - 1;

/// Smallest tracked binary exponent: values in `[2^MIN_EXP, 2^(MAX_EXP+1))`
/// resolve to a log bucket. `2^-30` ≈ 0.93 ns expressed in seconds — far
/// below any latency the simulator produces.
pub const MIN_EXP: i32 = -30;
/// Largest tracked binary exponent (`2^31` ≈ 2.1e9 — far above any
/// latency, utilization, or rate the simulator produces).
pub const MAX_EXP: i32 = 30;
const NUM_OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
const NUM_BUCKETS: usize = NUM_OCTAVES * SUB_BUCKETS;

/// Worst-case relative error of any percentile query, for values inside
/// the tracked range `[2^MIN_EXP, 2^(MAX_EXP+1))`.
///
/// A bucket spans `2^e / SUB_BUCKETS` starting at `2^e * (1 + s/64)`;
/// reporting the bucket midpoint puts the answer within half a bucket
/// width of the true value, and the lower edge is at least `2^e`, so the
/// relative error is at most `(2^e/64/2) / 2^e = 1/128` < 0.79%.
pub const REL_ERROR_BOUND: f64 = 1.0 / 128.0;

/// A log-bucketed histogram with fixed memory and mergeable state.
///
/// Values `<= 0` (and NaN) are counted in a dedicated low bucket and
/// represented as `0.0` in quantile answers; values at or above
/// `2^(MAX_EXP+1)` clamp into the topmost bucket. Everything in between
/// obeys [`REL_ERROR_BOUND`].
#[derive(Clone, Debug, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    /// Observations `<= 0.0` or NaN.
    low: u64,
    total: u64,
    /// Smallest / largest finite observation, tracked exactly so p0/p100
    /// (and top-quantile clamping) are error-free. `min > max` encodes
    /// "empty".
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram with its bucket array preallocated (so
    /// [`record`](Self::record) never allocates).
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; NUM_BUCKETS],
            low: 0,
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a histogram from an exact sample set.
    pub fn from_samples(samples: &crate::stats::Samples) -> Self {
        let mut h = LogHistogram::new();
        for &v in samples.raw() {
            h.record(v);
        }
        h
    }

    /// Bucket index for a strictly positive finite value, from its
    /// IEEE-754 bit pattern: the (clamped) exponent field selects the
    /// octave, the top [`SUB_BITS`] mantissa bits select the linear
    /// sub-bucket. Deterministic across platforms; no libm.
    #[inline]
    fn bucket_index(v: f64) -> usize {
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < MIN_EXP {
            // Underflow (incl. subnormals): clamp into the lowest bucket.
            return 0;
        }
        if exp > MAX_EXP {
            return NUM_BUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & SUB_MASK) as usize;
        ((exp - MIN_EXP) as usize) * SUB_BUCKETS + sub
    }

    /// Records one observation. Allocation-free (nezha-lint D10).
    #[inline]
    // `!(v > 0.0)` is deliberate, not `v <= 0.0`: the negated form is
    // true for NaN, which must land in the low bucket.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if !(v > 0.0) {
            // NaN, zero, and negatives all land here.
            self.low += 1;
            if v.is_finite() {
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
            return;
        }
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.counts[Self::bucket_index(v)] += 1;
    }

    /// Number of observations recorded (including low-bucket ones).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest observation, or 0 for an empty histogram.
    pub fn min(&self) -> f64 {
        if self.min <= self.max {
            self.min
        } else {
            0.0
        }
    }

    /// Largest observation, or 0 for an empty histogram.
    pub fn max(&self) -> f64 {
        if self.min <= self.max {
            self.max
        } else {
            0.0
        }
    }

    /// Midpoint of bucket `i` — the representative value reported for
    /// observations that landed in it.
    fn bucket_mid(i: usize) -> f64 {
        let octave = (i / SUB_BUCKETS) as i32 + MIN_EXP;
        let sub = (i % SUB_BUCKETS) as f64;
        let base = pow2(octave);
        let width = base / SUB_BUCKETS as f64;
        base + width * (sub + 0.5)
    }

    /// The `p`-th percentile (`p` in `[0, 100]`) by nearest-rank over
    /// bucket counts, or 0 for an empty histogram. Answers are bucket
    /// midpoints clamped to the observed `[min, max]`, so the relative
    /// error is bounded by [`REL_ERROR_BOUND`] for in-range values.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil() as u64;
        let rank = rank.clamp(1, self.total);
        if rank == self.total {
            // The top rank is the exact max — no bucket rounding.
            return self.max();
        }
        let mut seen = self.low;
        if rank <= seen {
            // The answer falls among <=0/NaN observations; report the
            // exact min when it was finite, else 0.
            return self.min().min(0.0);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if rank <= seen {
                return Self::bucket_mid(i).clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Convenience: `(p50, p90, p99, p999)` — the quantile set every
    /// window record and SLO rule consumes.
    pub fn quantiles(&self) -> (f64, f64, f64, f64) {
        (
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.percentile(99.9),
        )
    }

    /// Merges `other` into `self`: bucket-wise count add plus extrema
    /// union. Associative and commutative — merging per-shard histograms
    /// in any grouping yields state identical to recording the union of
    /// observations into one histogram.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.low += other.low;
        self.total += other.total;
        if other.min <= other.max {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// The histogram of observations recorded since `baseline` (which
    /// must be an earlier state of `self`): bucket-wise subtraction.
    /// Window extrema are not recoverable exactly, so they are taken
    /// from the delta's occupied bucket edges (clamped to the cumulative
    /// extrema) — still within [`REL_ERROR_BOUND`].
    pub fn delta_since(&self, baseline: &LogHistogram) -> LogHistogram {
        let mut d = LogHistogram::new();
        d.low = self.low.saturating_sub(baseline.low);
        d.total = self.total.saturating_sub(baseline.total);
        let mut first = None;
        let mut last = None;
        for (i, (now, base)) in self.counts.iter().zip(baseline.counts.iter()).enumerate() {
            let delta = now.saturating_sub(*base);
            if delta != 0 {
                d.counts[i] = delta;
                first.get_or_insert(i);
                last = Some(i);
            }
        }
        if d.low > 0 {
            d.min = self.min.min(0.0);
            d.max = self.max.min(0.0);
        }
        if let (Some(first), Some(last)) = (first, last) {
            let lo = Self::bucket_mid(first).max(self.min);
            let octave = (last / SUB_BUCKETS) as i32 + MIN_EXP;
            let upper_edge =
                pow2(octave) * (1.0 + ((last % SUB_BUCKETS) as f64 + 1.0) / SUB_BUCKETS as f64);
            d.min = d.min.min(lo);
            d.max = d.max.max(upper_edge.min(self.max));
        }
        d
    }

    /// A compact, deterministic summary of the current state (what
    /// window records retain once the full bucket array is rolled over).
    pub fn summary(&self) -> HistSummary {
        let (p50, p90, p99, p999) = self.quantiles();
        HistSummary {
            count: self.total,
            p50,
            p90,
            p99,
            p999,
            max: self.max(),
        }
    }

    /// Iterates `(bucket_index, count)` over non-empty buckets in
    /// ascending bucket order (ascending value order).
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }
}

/// `2^e` for integer `e`, built from the IEEE-754 exponent field so no
/// libm `powi` rounding is involved (exact for the exponent range used
/// here).
fn pow2(e: i32) -> f64 {
    f64::from_bits((((e + 1023) as u64) & 0x7ff) << 52)
}

/// Quantile summary of a [`LogHistogram`] at one point in time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistSummary {
    /// Observations recorded.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile.
    pub p999: f64,
    /// Exact largest observation.
    pub max: f64,
}

impl HistSummary {
    /// The all-zero summary of an empty histogram.
    pub fn empty() -> Self {
        HistSummary {
            count: 0,
            p50: 0.0,
            p90: 0.0,
            p99: 0.0,
            p999: 0.0,
            max: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Samples;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(50.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.summary(), HistSummary::empty());
    }

    #[test]
    fn single_value_reports_itself_exactly() {
        // min/max clamping makes a single observation exact.
        let mut h = LogHistogram::new();
        h.record(3.25);
        assert_eq!(h.percentile(0.0), 3.25);
        assert_eq!(h.percentile(50.0), 3.25);
        assert_eq!(h.percentile(100.0), 3.25);
        assert_eq!(h.max(), 3.25);
    }

    #[test]
    fn percentiles_stay_within_error_bound() {
        let mut h = LogHistogram::new();
        let mut exact = Samples::new();
        let mut x: f64 = 1.0;
        for _ in 0..10_000 {
            x = (x * 1.618_033) % 977.0 + 1e-6;
            h.record(x);
            exact.record(x);
        }
        for p in [50.0, 90.0, 99.0, 99.9] {
            let approx = h.percentile(p);
            let truth = exact.percentile(p);
            let rel = (approx - truth).abs() / truth;
            assert!(
                rel <= REL_ERROR_BOUND,
                "p{p}: approx {approx} vs exact {truth} (rel err {rel})"
            );
        }
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let vals: Vec<f64> = (1..500).map(|i| (i as f64) * 0.37 + 0.001).collect();
        let mut whole = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &v) in vals.iter().enumerate() {
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, whole, "split+merge must equal direct recording");
        assert_eq!(ab, ba, "merge must be commutative");
    }

    #[test]
    fn low_and_out_of_range_values_are_tracked() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-4.0);
        h.record(f64::NAN);
        h.record(1e-12); // below 2^-30: clamps into the lowest bucket
        h.record(1e12); // above 2^31: clamps into the topmost bucket
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), -4.0);
        assert_eq!(h.max(), 1e12);
        // p100 is the exact max even though the value clamped.
        assert_eq!(h.percentile(100.0), 1e12);
        // The lowest-rank answers fall in the low bucket.
        assert_eq!(h.percentile(1.0), -4.0);
    }

    #[test]
    fn bucket_index_is_monotone_on_octave_boundaries() {
        // Values straddling an octave boundary must land in adjacent
        // (or identical) buckets, never out of order.
        let mut last = 0usize;
        let mut v = 1.0 / (1 << 20) as f64;
        while v < 1e6 {
            let i = LogHistogram::bucket_index(v);
            assert!(i >= last, "bucket index regressed at {v}");
            last = i;
            v *= 1.01;
        }
    }

    #[test]
    fn pow2_matches_powi() {
        for e in MIN_EXP..=MAX_EXP {
            assert_eq!(pow2(e), 2f64.powi(e), "pow2({e})");
        }
    }

    #[test]
    fn delta_since_windows_a_cumulative_histogram() {
        let mut h = LogHistogram::new();
        for v in [1.0, 2.0, 4.0] {
            h.record(v);
        }
        let baseline = h.clone();
        for v in [8.0, 16.0] {
            h.record(v);
        }
        let d = h.delta_since(&baseline);
        assert_eq!(d.count(), 2);
        let p50 = d.percentile(50.0);
        assert!((p50 - 8.0).abs() / 8.0 <= REL_ERROR_BOUND, "p50 {p50}");
        assert!(d.max() >= 16.0 && d.max() <= 16.0 * (1.0 + 2.0 * REL_ERROR_BOUND));
        let empty = h.delta_since(&h);
        assert!(empty.is_empty());
    }

    #[test]
    fn from_samples_matches_manual_recording() {
        let mut s = Samples::new();
        let mut h = LogHistogram::new();
        for i in 1..100 {
            let v = i as f64 * 0.13;
            s.record(v);
            h.record(v);
        }
        assert_eq!(LogHistogram::from_samples(&s), h);
    }
}

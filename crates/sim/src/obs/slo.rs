//! Declarative SLO rules evaluated at window close.
//!
//! A [`SloWatchdog`] holds a list of [`SloRule`]s and evaluates every
//! rule against each closed [`WindowRecord`](super::WindowRecord). Rules
//! are *stateful per rule*: an event is emitted when a rule **breaches**
//! (crosses from healthy into violation) and again when it **recovers**,
//! so a sustained violation produces one breach event, not one per
//! window. Evaluation order is the rule declaration order and every
//! input comes from the deterministic window record, so the event log is
//! a pure function of the seed — chaos scenarios assert on it byte for
//! byte.

use super::WindowRecord;
use crate::metrics::{json_f64, json_str};
use std::fmt::Write as _;

/// What a rule tests. All thresholds compare against values computed
/// from a single closed window (deltas, not cumulative totals).
#[derive(Clone, Debug)]
pub enum SloKind {
    /// Breach when the window's p99 of histogram `hist` exceeds
    /// `max_secs`. Covers completion latency and fault detection latency
    /// alike — both are histograms in the window record.
    HistP99Above {
        /// Window histogram name.
        hist: String,
        /// Breach threshold (same unit as the histogram, typically secs).
        max_secs: f64,
    },
    /// Breach when `dropped / (dropped + ok)` over the window exceeds
    /// `max_rate`. Windows with no traffic are healthy.
    LossRateAbove {
        /// Window counter of dropped events.
        dropped: String,
        /// Window counter of successful events.
        ok: String,
        /// Breach threshold as a fraction in `[0, 1]`.
        max_rate: f64,
    },
    /// Breach when a window counter exceeds `max`.
    CounterAbove {
        /// Window counter name.
        counter: String,
        /// Largest healthy value.
        max: u64,
    },
    /// Breach when Jain's fairness index over all window counters whose
    /// key starts with `prefix` drops below `min_index`. The index is
    /// `(Σx)² / (n·Σx²)`: 1.0 for perfectly balanced load, `1/n` when
    /// one member carries everything. Membership is *window-active*
    /// members only — window records omit zero deltas, so a member that
    /// did nothing all window is not counted (guard total starvation
    /// with a separate `CounterAbove` rule on the aggregate). Windows
    /// with fewer than two active members are healthy.
    FairnessBelow {
        /// Key prefix selecting the per-member window counters.
        prefix: String,
        /// Smallest healthy fairness index in `(0, 1]`.
        min_index: f64,
    },
}

/// A named SLO rule.
#[derive(Clone, Debug)]
pub struct SloRule {
    /// Stable rule name (appears in every event).
    pub name: String,
    /// What to test.
    pub kind: SloKind,
}

impl SloRule {
    /// A p99-latency rule over window histogram `hist`.
    pub fn p99_above(name: &str, hist: &str, max_secs: f64) -> Self {
        SloRule {
            name: name.to_string(),
            kind: SloKind::HistP99Above {
                hist: hist.to_string(),
                max_secs,
            },
        }
    }

    /// A per-window loss-rate rule over `dropped` / (`dropped` + `ok`).
    pub fn loss_rate_above(name: &str, dropped: &str, ok: &str, max_rate: f64) -> Self {
        SloRule {
            name: name.to_string(),
            kind: SloKind::LossRateAbove {
                dropped: dropped.to_string(),
                ok: ok.to_string(),
                max_rate,
            },
        }
    }

    /// A per-window counter ceiling.
    pub fn counter_above(name: &str, counter: &str, max: u64) -> Self {
        SloRule {
            name: name.to_string(),
            kind: SloKind::CounterAbove {
                counter: counter.to_string(),
                max,
            },
        }
    }

    /// A Jain's-fairness floor over `prefix`-keyed window counters.
    pub fn fairness_below(name: &str, prefix: &str, min_index: f64) -> Self {
        SloRule {
            name: name.to_string(),
            kind: SloKind::FairnessBelow {
                prefix: prefix.to_string(),
                min_index,
            },
        }
    }

    /// Evaluates the rule against one window:
    /// `(observed, threshold, violated)`.
    fn evaluate(&self, w: &WindowRecord) -> (f64, f64, bool) {
        match &self.kind {
            SloKind::HistP99Above { hist, max_secs } => {
                let observed = w.hist(hist).map(|s| s.p99).unwrap_or(0.0);
                (observed, *max_secs, observed > *max_secs)
            }
            SloKind::LossRateAbove {
                dropped,
                ok,
                max_rate,
            } => {
                let d = w.counter(dropped) as f64;
                let o = w.counter(ok) as f64;
                let total = d + o;
                let rate = if total == 0.0 { 0.0 } else { d / total };
                (rate, *max_rate, rate > *max_rate)
            }
            SloKind::CounterAbove { counter, max } => {
                let observed = w.counter(counter);
                (observed as f64, *max as f64, observed > *max)
            }
            SloKind::FairnessBelow { prefix, min_index } => {
                let index = jain_index(w.counters_with_prefix(prefix).map(|(_, v)| v as f64));
                match index {
                    Some(i) => (i, *min_index, i < *min_index),
                    None => (1.0, *min_index, false),
                }
            }
        }
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over `xs`, or `None` when
/// fewer than two members (or zero total) make fairness meaningless.
pub fn jain_index(xs: impl Iterator<Item = f64>) -> Option<f64> {
    let mut n = 0u64;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    for x in xs {
        n += 1;
        sum += x;
        sum_sq += x * x;
    }
    if n < 2 || sum_sq == 0.0 {
        return None;
    }
    Some((sum * sum) / (n as f64 * sum_sq))
}

/// Whether an [`SloEvent`] marks entering or leaving violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloEdge {
    /// The rule just crossed into violation.
    Breach,
    /// The rule just returned to healthy.
    Recover,
}

/// One deterministic watchdog event.
#[derive(Clone, Debug, PartialEq)]
pub struct SloEvent {
    /// Index of the window whose close triggered the event.
    pub window: u64,
    /// Name of the rule that fired.
    pub rule: String,
    /// Breach or recovery.
    pub edge: SloEdge,
    /// The value the rule observed in this window.
    pub observed: f64,
    /// The rule's threshold.
    pub threshold: f64,
}

impl SloEvent {
    /// One deterministic JSON line (keys in fixed order, shortest
    /// round-trip floats) for the SloEvent log.
    pub fn json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let edge = match self.edge {
            SloEdge::Breach => "breach",
            SloEdge::Recover => "recover",
        };
        let _ = write!(
            out,
            "{{\"window\": {}, \"rule\": {}, \"edge\": \"{edge}\", \
             \"observed\": {}, \"threshold\": {}}}",
            self.window,
            json_str(&self.rule),
            json_f64(self.observed),
            json_f64(self.threshold),
        );
        out
    }
}

/// Evaluates a rule set at every window close, emitting edge-triggered
/// [`SloEvent`]s.
#[derive(Clone, Debug, Default)]
pub struct SloWatchdog {
    rules: Vec<SloRule>,
    /// Per-rule "currently in violation" state, parallel to `rules`.
    violated: Vec<bool>,
    events: Vec<SloEvent>,
}

impl SloWatchdog {
    /// A watchdog over `rules` (all initially healthy).
    pub fn new(rules: Vec<SloRule>) -> Self {
        let violated = vec![false; rules.len()];
        SloWatchdog {
            rules,
            violated,
            events: Vec::new(),
        }
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluates every rule against a freshly closed window, appending
    /// breach/recover events. Returns how many events this window added.
    pub fn observe_window(&mut self, w: &WindowRecord) -> usize {
        let before = self.events.len();
        for (i, rule) in self.rules.iter().enumerate() {
            let (observed, threshold, violated) = rule.evaluate(w);
            if violated != self.violated[i] {
                self.violated[i] = violated;
                self.events.push(SloEvent {
                    window: w.index,
                    rule: rule.name.clone(),
                    edge: if violated {
                        SloEdge::Breach
                    } else {
                        SloEdge::Recover
                    },
                    observed,
                    threshold,
                });
            }
        }
        self.events.len() - before
    }

    /// Every event emitted so far, in emission order.
    pub fn events(&self) -> &[SloEvent] {
        &self.events
    }

    /// The full event log as JSONL (one event per line).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::WindowRecord;
    use super::*;

    fn window(idx: u64, counters: &[(&str, u64)]) -> WindowRecord {
        let mut w = WindowRecord::new(idx, crate::time::SimTime(0), crate::time::SimTime(1));
        for (k, v) in counters {
            w.set_counter(k, *v);
        }
        w
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index([1.0, 1.0, 1.0, 1.0].into_iter()), Some(1.0));
        let skew = jain_index([4.0, 0.0, 0.0, 0.0].into_iter()).unwrap();
        assert!((skew - 0.25).abs() < 1e-12, "one-carries-all => 1/n");
        assert_eq!(jain_index([5.0].into_iter()), None, "n<2 is meaningless");
        assert_eq!(jain_index([0.0, 0.0].into_iter()), None, "zero total");
    }

    #[test]
    fn breach_and_recover_are_edge_triggered() {
        let mut dog = SloWatchdog::new(vec![SloRule::counter_above("over", "x", 5)]);
        assert_eq!(dog.observe_window(&window(0, &[("x", 3)])), 0);
        assert_eq!(dog.observe_window(&window(1, &[("x", 9)])), 1);
        // Sustained violation: no new event.
        assert_eq!(dog.observe_window(&window(2, &[("x", 10)])), 0);
        assert_eq!(dog.observe_window(&window(3, &[("x", 1)])), 1);
        let edges: Vec<SloEdge> = dog.events().iter().map(|e| e.edge).collect();
        assert_eq!(edges, vec![SloEdge::Breach, SloEdge::Recover]);
        assert_eq!(dog.events()[0].window, 1);
        assert_eq!(dog.events()[1].window, 3);
    }

    #[test]
    fn loss_rate_rule() {
        let mut dog = SloWatchdog::new(vec![SloRule::loss_rate_above("loss", "drop", "ok", 0.01)]);
        // No traffic: healthy.
        assert_eq!(dog.observe_window(&window(0, &[])), 0);
        assert_eq!(
            dog.observe_window(&window(1, &[("drop", 5), ("ok", 95)])),
            1
        );
        assert_eq!(dog.events()[0].observed, 0.05);
    }

    #[test]
    fn fairness_rule_over_prefix() {
        let mut dog = SloWatchdog::new(vec![SloRule::fairness_below("fair", "fe.rx", 0.9)]);
        let balanced = window(0, &[("fe.rx{server=0}", 50), ("fe.rx{server=1}", 50)]);
        assert_eq!(dog.observe_window(&balanced), 0);
        let skewed = window(1, &[("fe.rx{server=0}", 99), ("fe.rx{server=1}", 1)]);
        assert_eq!(dog.observe_window(&skewed), 1);
        let observed = dog.events()[0].observed;
        assert!((observed - 10_000.0 / 19_604.0).abs() < 1e-12, "{observed}");
    }

    #[test]
    fn event_json_is_stable() {
        let e = SloEvent {
            window: 7,
            rule: "loss".into(),
            edge: SloEdge::Breach,
            observed: 0.25,
            threshold: 0.01,
        };
        assert_eq!(
            e.json_line(),
            "{\"window\": 7, \"rule\": \"loss\", \"edge\": \"breach\", \
             \"observed\": 0.25, \"threshold\": 0.01}"
        );
    }
}

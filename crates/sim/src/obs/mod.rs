//! The live observability plane: windowed rollups, bounded log-bucket
//! histograms, SLO watchdog, and exporters.
//!
//! End-of-run snapshots answer "what happened overall"; every figure in
//! the paper is a *timeline or tail* (Fig. 11's utilization curves,
//! Fig. 14's loss trace), and a long-running `nezha-serve` daemon needs
//! telemetry that is **streaming** (emitted while the sim runs),
//! **bounded** (fixed memory regardless of run length) and **mergeable**
//! (per-shard state combines deterministically at barriers). This module
//! provides exactly that:
//!
//! - [`LogHistogram`] — fixed-memory log-bucketed histogram with a
//!   documented relative-error bound ([`REL_ERROR_BOUND`]) and a
//!   commutative, associative merge.
//! - [`WindowRecord`] / [`WindowedRollup`] — per-window deltas of
//!   counters, gauges, and histogram summaries, retained in a bounded
//!   ring and rendered as a deterministic JSONL stream.
//! - [`RegistryWindows`] — drives window closes off a
//!   [`MetricsRegistry`] by snapshot-free diffing (counter deltas,
//!   histogram tails), used by the cluster event loop.
//! - [`SloWatchdog`] — declarative [`SloRule`]s evaluated at each window
//!   close, emitting edge-triggered deterministic [`SloEvent`]s.
//! - [`export`] — Prometheus text exposition and JSONL helpers.
//!
//! Region shards contribute [`WindowValue`] effects that are merged at
//! the per-epoch barrier through `shard::merge_effects`, so the window
//! stream is byte-identical at 1/2/4/8 shards (pinned by
//! `tests/shard_equivalence.rs`).

pub mod export;
mod loghist;
mod slo;

pub use export::prometheus_text;
pub use loghist::{HistSummary, LogHistogram, MAX_EXP, MIN_EXP, REL_ERROR_BOUND, SUB_BUCKETS};
pub use slo::{jain_index, SloEdge, SloEvent, SloKind, SloRule, SloWatchdog};

use crate::metrics::{json_f64, json_str, MetricsRegistry};
use crate::time::{SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// One per-shard window contribution, merged across shards at a barrier.
///
/// Counters add; histograms merge bucket-wise — both operations are
/// commutative and associative, so the merged window is independent of
/// the shard count (the merge *order* is already fixed by
/// `shard::merge_effects`).
#[derive(Clone, Debug)]
pub enum WindowValue {
    /// A counter delta contributed by one shard.
    Count(u64),
    /// A histogram of this window's observations from one shard.
    Hist(LogHistogram),
}

/// The closed contents of one observation window: counter deltas, gauge
/// values, and histogram summaries, keyed by canonical metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WindowRecord {
    /// Monotonic window index (epoch index in the region).
    pub index: u64,
    /// Inclusive window start.
    pub start: SimTime,
    /// Exclusive window end.
    pub end: SimTime,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, HistSummary>,
}

impl WindowRecord {
    /// An empty record for window `index` covering `[start, end)`.
    pub fn new(index: u64, start: SimTime, end: SimTime) -> Self {
        WindowRecord {
            index,
            start,
            end,
            ..Default::default()
        }
    }

    /// Builds a record by folding barrier-merged shard effects: counts
    /// with the same key add, histograms with the same key merge. The
    /// result is independent of how observations were partitioned.
    pub fn from_effects(
        index: u64,
        start: SimTime,
        end: SimTime,
        effects: Vec<(String, WindowValue)>,
    ) -> Self {
        let mut w = WindowRecord::new(index, start, end);
        let mut hists: BTreeMap<String, LogHistogram> = BTreeMap::new();
        for (key, value) in effects {
            match value {
                WindowValue::Count(n) => {
                    *w.counters.entry(key).or_insert(0) += n;
                }
                WindowValue::Hist(h) => match hists.get_mut(&key) {
                    Some(acc) => acc.merge(&h),
                    None => {
                        hists.insert(key, h);
                    }
                },
            }
        }
        for (key, h) in hists {
            if !h.is_empty() {
                w.hists.insert(key, h.summary());
            }
        }
        w.counters.retain(|_, v| *v != 0);
        w
    }

    /// Sets a window counter (overwrites).
    pub fn set_counter(&mut self, key: &str, v: u64) {
        if v != 0 {
            self.counters.insert(key.to_string(), v);
        }
    }

    /// Sets a window gauge.
    pub fn set_gauge(&mut self, key: &str, v: f64) {
        self.gauges.insert(key.to_string(), v);
    }

    /// Sets a window histogram summary.
    pub fn set_hist(&mut self, key: &str, s: HistSummary) {
        self.hists.insert(key.to_string(), s);
    }

    /// This window's delta for counter `key` (0 when absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// This window's value for gauge `key`.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// This window's summary for histogram `key`.
    pub fn hist(&self, key: &str) -> Option<&HistSummary> {
        self.hists.get(key)
    }

    /// Iterates `(key, delta)` over window counters in sorted order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates window counters whose key starts with `prefix` (the
    /// fairness rule's member selector).
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates `(key, summary)` over window histograms in sorted order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &HistSummary)> {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// One deterministic JSON line: fixed key order, sorted maps,
    /// shortest-round-trip floats. This is the JSONL window stream
    /// format (golden-pinned across shard counts).
    pub fn json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"window\": {}, \"start_ns\": {}, \"end_ns\": {}, \"counters\": {{",
            self.index,
            self.start.nanos(),
            self.end.nanos()
        );
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {v}", json_str(k));
        }
        out.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: {}", json_str(k), json_f64(*v));
        }
        out.push_str("}, \"hists\": {");
        for (i, (k, s)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{}: {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                 \"p999\": {}, \"max\": {}}}",
                json_str(k),
                s.count,
                json_f64(s.p50),
                json_f64(s.p90),
                json_f64(s.p99),
                json_f64(s.p999),
                json_f64(s.max),
            );
        }
        out.push_str("}}");
        out
    }
}

/// A bounded ring of closed windows plus the SLO watchdog and the
/// emitted JSONL line log.
///
/// Full [`WindowRecord`]s are retained ring-bounded (`retain` windows);
/// the JSONL *line* log keeps one small string per closed window so
/// short-lived runs (tests, experiments) can export the complete stream.
/// A long-running daemon would drain [`jsonl_lines`](Self::jsonl_lines)
/// to a sink instead of accumulating them.
#[derive(Clone, Debug)]
pub struct WindowedRollup {
    retain: usize,
    ring: VecDeque<WindowRecord>,
    jsonl: Vec<String>,
    watchdog: SloWatchdog,
    closed: u64,
}

impl WindowedRollup {
    /// A rollup retaining the last `retain` windows, watched by `rules`.
    pub fn new(retain: usize, rules: Vec<SloRule>) -> Self {
        assert!(retain > 0, "retention ring must hold at least one window");
        WindowedRollup {
            retain,
            ring: VecDeque::with_capacity(retain),
            jsonl: Vec::new(),
            watchdog: SloWatchdog::new(rules),
            closed: 0,
        }
    }

    /// Pushes a freshly closed window: renders its JSONL line, runs the
    /// watchdog, and retires the oldest record when the ring is full.
    /// Returns how many SLO events the window produced.
    pub fn push(&mut self, record: WindowRecord) -> usize {
        self.jsonl.push(record.json_line());
        let events = self.watchdog.observe_window(&record);
        if self.ring.len() == self.retain {
            self.ring.pop_front();
        }
        self.ring.push_back(record);
        self.closed += 1;
        events
    }

    /// Number of windows closed over the rollup's lifetime.
    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// The retained window records, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &WindowRecord> {
        self.ring.iter()
    }

    /// The most recently closed window.
    pub fn latest(&self) -> Option<&WindowRecord> {
        self.ring.back()
    }

    /// The emitted JSONL lines, one per closed window (not ring-bounded).
    pub fn jsonl_lines(&self) -> &[String] {
        &self.jsonl
    }

    /// The full JSONL window stream (one line per closed window).
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for line in &self.jsonl {
            out.push_str(line);
            out.push('\n');
        }
        out
    }

    /// The SLO watchdog (event log access).
    pub fn watchdog(&self) -> &SloWatchdog {
        &self.watchdog
    }
}

/// Drives a [`WindowedRollup`] off a [`MetricsRegistry`]: at each window
/// close it reads counter deltas, changed gauges, and the *tail* of each
/// exact-sample histogram recorded since the previous close (turned into
/// a per-window [`LogHistogram`] summary). Cumulative [`LogHistogram`]
/// metrics are windowed by bucket-wise subtraction.
#[derive(Clone, Debug)]
pub struct RegistryWindows {
    width: SimDuration,
    next_end: SimTime,
    rollup: WindowedRollup,
    last_counters: BTreeMap<String, u64>,
    last_gauges: BTreeMap<String, f64>,
    last_hist_lens: BTreeMap<String, usize>,
    last_loghists: BTreeMap<String, LogHistogram>,
}

impl RegistryWindows {
    /// Windows of `width` starting at sim time 0, retaining `retain`
    /// records, watched by `rules`.
    pub fn new(width: SimDuration, retain: usize, rules: Vec<SloRule>) -> Self {
        assert!(width.nanos() > 0, "window width must be positive");
        RegistryWindows {
            width,
            next_end: SimTime(width.nanos()),
            rollup: WindowedRollup::new(retain, rules),
            last_counters: BTreeMap::new(),
            last_gauges: BTreeMap::new(),
            last_hist_lens: BTreeMap::new(),
            last_loghists: BTreeMap::new(),
        }
    }

    /// Closes every window whose end is `<= t` against the registry's
    /// current contents. Call with the timestamp of the *next* event
    /// before handling it (events at exactly a window boundary belong to
    /// the following window), and once more with the run deadline after
    /// the event loop drains.
    pub fn advance_to(&mut self, t: SimTime, reg: &MetricsRegistry) {
        while self.next_end.nanos() <= t.nanos() {
            self.close_one(reg);
        }
    }

    fn close_one(&mut self, reg: &MetricsRegistry) {
        let end = self.next_end;
        let start = SimTime(end.nanos() - self.width.nanos());
        let index = self.rollup.closed();
        let mut w = WindowRecord::new(index, start, end);
        reg.for_each_window(|key, view| match view {
            crate::metrics::WindowView::Counter(now) => {
                let before = self.last_counters.get(key).copied().unwrap_or(0);
                let delta = now.saturating_sub(before);
                if delta != 0 {
                    w.set_counter(key, delta);
                }
                self.last_counters.insert(key.to_string(), now);
            }
            crate::metrics::WindowView::Gauge(now) => {
                let before = self.last_gauges.get(key).copied();
                if before != Some(now) {
                    w.set_gauge(key, now);
                    self.last_gauges.insert(key.to_string(), now);
                }
            }
            crate::metrics::WindowView::SampleTail(raw) => {
                let seen = self.last_hist_lens.get(key).copied().unwrap_or(0);
                if raw.len() > seen {
                    let mut h = LogHistogram::new();
                    for &v in &raw[seen..] {
                        h.record(v);
                    }
                    w.set_hist(key, h.summary());
                }
                self.last_hist_lens.insert(key.to_string(), raw.len());
            }
            crate::metrics::WindowView::LogHist(h) => {
                let delta = match self.last_loghists.get(key) {
                    Some(base) => h.delta_since(base),
                    None => h.clone(),
                };
                if !delta.is_empty() {
                    w.set_hist(key, delta.summary());
                }
                self.last_loghists.insert(key.to_string(), h.clone());
            }
        });
        self.rollup.push(w);
        self.next_end = SimTime(end.nanos() + self.width.nanos());
    }

    /// The underlying rollup (window records, JSONL stream, watchdog).
    pub fn rollup(&self) -> &WindowedRollup {
        &self.rollup
    }

    /// The configured window width.
    pub fn width(&self) -> SimDuration {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_record_json_is_sorted_and_stable() {
        let mut w = WindowRecord::new(3, SimTime(0), SimTime(100));
        w.set_counter("b.count", 2);
        w.set_counter("a.count", 1);
        w.set_gauge("util", 0.5);
        let mut h = LogHistogram::new();
        h.record(1.0);
        w.set_hist("lat", h.summary());
        let line = w.json_line();
        assert!(line.starts_with("{\"window\": 3, \"start_ns\": 0, \"end_ns\": 100,"));
        assert!(line.find("a.count").unwrap() < line.find("b.count").unwrap());
        assert!(line.contains("\"lat\": {\"count\": 1,"));
        assert_eq!(line, w.clone().json_line(), "rendering is pure");
    }

    #[test]
    fn from_effects_is_partition_invariant() {
        let mk = |vals: &[f64], n: u64| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            vec![
                ("lat".to_string(), WindowValue::Hist(h)),
                ("done".to_string(), WindowValue::Count(n)),
            ]
        };
        let one =
            WindowRecord::from_effects(0, SimTime(0), SimTime(1), mk(&[1.0, 2.0, 3.0, 4.0], 4));
        let mut split = mk(&[1.0, 3.0], 2);
        split.extend(mk(&[2.0, 4.0], 2));
        let two = WindowRecord::from_effects(0, SimTime(0), SimTime(1), split);
        assert_eq!(one, two);
        assert_eq!(one.json_line(), two.json_line());
        assert_eq!(one.counter("done"), 4);
    }

    #[test]
    fn rollup_ring_is_bounded_but_stream_is_complete() {
        let mut r = WindowedRollup::new(2, vec![]);
        for i in 0..5 {
            r.push(WindowRecord::new(i, SimTime(i * 10), SimTime((i + 1) * 10)));
        }
        assert_eq!(r.closed(), 5);
        assert_eq!(r.windows().count(), 2, "ring retains only the last 2");
        assert_eq!(r.latest().unwrap().index, 4);
        assert_eq!(r.jsonl_lines().len(), 5, "stream log keeps every line");
        assert_eq!(r.jsonl().lines().count(), 5);
    }

    #[test]
    fn registry_windows_emit_deltas_and_tails() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pkt.ok", &[]);
        let g = reg.gauge("util", &[]);
        let h = reg.histogram("lat", &[]);
        let mut win = RegistryWindows::new(SimDuration::from_millis(10), 8, vec![]);

        reg.add(c, 5);
        reg.set(g, 0.25);
        reg.observe(h, 1.5);
        win.advance_to(SimTime(10_000_000), &reg); // closes window 0
        reg.add(c, 7);
        reg.observe(h, 2.5);
        reg.observe(h, 3.5);
        win.advance_to(SimTime(20_000_000), &reg); // closes window 1

        let windows: Vec<&WindowRecord> = win.rollup().windows().collect();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].counter("pkt.ok"), 5);
        assert_eq!(windows[1].counter("pkt.ok"), 7, "second window is a delta");
        assert_eq!(windows[0].gauge("util"), Some(0.25));
        assert_eq!(
            windows[1].gauge("util"),
            None,
            "unchanged gauges are omitted"
        );
        assert_eq!(windows[0].hist("lat").unwrap().count, 1);
        assert_eq!(windows[1].hist("lat").unwrap().count, 2, "only the tail");
    }

    #[test]
    fn gap_windows_are_empty_not_skipped() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x", &[]);
        let mut win = RegistryWindows::new(SimDuration::from_millis(10), 8, vec![]);
        reg.inc(c);
        // Jump 5 windows ahead: one window carries the delta, the rest
        // close empty (nothing happened in them).
        win.advance_to(SimTime(50_000_000), &reg);
        assert_eq!(win.rollup().closed(), 5);
        let deltas: Vec<u64> = win.rollup().windows().map(|w| w.counter("x")).collect();
        assert_eq!(deltas, vec![1, 0, 0, 0, 0]);
    }

    #[test]
    fn boundary_event_belongs_to_next_window() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x", &[]);
        let mut win = RegistryWindows::new(SimDuration::from_millis(10), 8, vec![]);
        // advance_to is called with the event's timestamp *before* the
        // event mutates the registry: a t=10ms event closes window 0
        // first, so its effects land in window 1.
        win.advance_to(SimTime(10_000_000), &reg);
        reg.inc(c);
        win.advance_to(SimTime(20_000_000), &reg);
        let deltas: Vec<u64> = win.rollup().windows().map(|w| w.counter("x")).collect();
        assert_eq!(deltas, vec![0, 1]);
    }
}

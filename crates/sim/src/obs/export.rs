//! Exposition formats: Prometheus text format and JSONL helpers.
//!
//! Both renderers are pure functions of their input (sorted iteration,
//! shortest-round-trip floats), so same-seed runs export byte-identical
//! artifacts — CI uploads them and tests can hash them.

use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::obs::HistSummary;
use std::fmt::Write as _;

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4).
///
/// - Metric names are prefixed with `nezha_` and sanitized (every
///   character outside `[a-zA-Z0-9_:]` becomes `_`), canonical
///   `name{label=value,...}` keys are split back into name + labels.
/// - Counters and gauges map directly; exact and log-bucketed
///   histograms are rendered as summaries (`quantile` labels plus a
///   `_count` child), which keeps the exposition size independent of
///   the bucket count.
/// - Time series are skipped: they are already binned timelines, and
///   Prometheus expects to do its own scraping over time.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(snap.len() * 64);
    let mut last_family = String::new();
    for (key, value) in snap.iter() {
        let (name, labels) = split_key(key);
        let family = format!("nezha_{}", sanitize(&name));
        let type_line = |out: &mut String, last: &mut String, kind: &str| {
            if *last != family {
                let _ = writeln!(out, "# TYPE {family} {kind}");
                last.clone_from(&family);
            }
        };
        match value {
            MetricValue::Counter(v) => {
                type_line(&mut out, &mut last_family, "counter");
                let _ = writeln!(out, "{family}{} {v}", label_set(&labels, &[]));
            }
            MetricValue::Gauge(v) => {
                type_line(&mut out, &mut last_family, "gauge");
                let _ = writeln!(out, "{family}{} {}", label_set(&labels, &[]), fmt_f64(*v));
            }
            MetricValue::Histogram(s) => {
                let mut s = s.clone();
                let summary = HistSummary {
                    count: s.len() as u64,
                    p50: s.percentile(50.0),
                    p90: s.percentile(90.0),
                    p99: s.percentile(99.0),
                    p999: s.percentile(99.9),
                    max: s.max(),
                };
                type_line(&mut out, &mut last_family, "summary");
                write_summary(&mut out, &family, &labels, &summary);
            }
            MetricValue::LogHist(h) => {
                type_line(&mut out, &mut last_family, "summary");
                write_summary(&mut out, &family, &labels, &h.summary());
            }
            MetricValue::Series(_) => {}
        }
    }
    out
}

fn write_summary(out: &mut String, family: &str, labels: &[(String, String)], s: &HistSummary) {
    for (q, v) in [
        ("0.5", s.p50),
        ("0.9", s.p90),
        ("0.99", s.p99),
        ("0.999", s.p999),
    ] {
        let _ = writeln!(
            out,
            "{family}{} {}",
            label_set(labels, &[("quantile", q)]),
            fmt_f64(v)
        );
    }
    let _ = writeln!(out, "{family}_count{} {}", label_set(labels, &[]), s.count);
    let _ = writeln!(
        out,
        "{family}_max{} {}",
        label_set(labels, &[]),
        fmt_f64(s.max)
    );
}

/// Splits a canonical `name{a=b,c=d}` key into name and label pairs.
fn split_key(key: &str) -> (String, Vec<(String, String)>) {
    match key.split_once('{') {
        None => (key.to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').unwrap_or(rest);
            let labels = body
                .split(',')
                .filter_map(|pair| {
                    pair.split_once('=')
                        .map(|(k, v)| (k.to_string(), v.to_string()))
                })
                .collect();
            (name.to_string(), labels)
        }
    }
}

/// Renders `{a="b",c="d"}` (labels first, then `extra`), or `""` when
/// both are empty.
fn label_set(labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, k: &str, v: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize(k), v.replace('"', "\\\""));
    };
    for (k, v) in labels {
        push(&mut out, &mut first, k, v);
    }
    for (k, v) in extra {
        push(&mut out, &mut first, k, v);
    }
    out.push('}');
    out
}

/// Replaces every character outside the Prometheus metric-name charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Prometheus float formatting: shortest round-trip, `NaN`/`+Inf`/`-Inf`
/// spelled the way the exposition format expects.
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn split_and_sanitize() {
        let (name, labels) = split_key("ctrl.remote_cycles{server=3,vnic=2}");
        assert_eq!(name, "ctrl.remote_cycles");
        assert_eq!(
            labels,
            vec![
                ("server".to_string(), "3".to_string()),
                ("vnic".to_string(), "2".to_string())
            ]
        );
        assert_eq!(sanitize("ctrl.remote_cycles"), "ctrl_remote_cycles");
    }

    #[test]
    fn exposition_renders_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.add(reg.counter("pkt.ok", &[]), 42);
        reg.set(reg.gauge("util", &[("server", "3".into())]), 0.5);
        let h = reg.histogram("lat.conn", &[]);
        reg.observe(h, 1.5);
        let lh = reg.log_histogram("lat.stream", &[]);
        reg.observe_log(lh, 2.5);
        reg.series_add(
            reg.series("cps", &[], crate::time::SimDuration::from_millis(50)),
            crate::time::SimTime(0),
            1.0,
        );
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE nezha_pkt_ok counter\nnezha_pkt_ok 42\n"));
        assert!(text.contains("nezha_util{server=\"3\"} 0.5\n"));
        assert!(text.contains("# TYPE nezha_lat_conn summary"));
        assert!(text.contains("nezha_lat_conn{quantile=\"0.5\"} 1.5\n"));
        assert!(text.contains("nezha_lat_conn_count 1\n"));
        assert!(text.contains("nezha_lat_stream_count 1\n"));
        assert!(!text.contains("cps"), "series are not exported");
        assert_eq!(text, prometheus_text(&reg.snapshot()), "deterministic");
    }
}

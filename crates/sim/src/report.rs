//! Typed, schema-versioned benchmark reports.
//!
//! Every experiment ends by producing a [`BenchReport`]: a named bundle
//! of [`Sample`]s split into two sections with different determinism
//! contracts:
//!
//! * **deterministic** — pure functions of the seed (event counts,
//!   simulated durations, completion totals). Two same-seed runs must
//!   produce byte-identical deterministic sections; regression gates and
//!   golden diffs compare only this part.
//! * **timing** — wall-clock observations (events per wall-second, peak
//!   RSS). These vary run-to-run and machine-to-machine and are
//!   explicitly segregated so a `BENCH_*.json` diff never mixes the two.
//!
//! The JSON rendering is deterministic given the report contents: fields
//! print in insertion order, floats use shortest-round-trip formatting,
//! and the schema carries an explicit version so downstream tooling
//! (`scripts/bench_gate.sh`) can refuse reports it does not understand.

use crate::metrics::{json_f64, json_str, MetricsSnapshot};
use crate::obs::{HistSummary, LogHistogram, REL_ERROR_BOUND};
use std::fmt::Write as _;

/// Version of the JSON layout emitted by [`BenchReport::to_json`].
/// Bump when the shape (not the set of sample names) changes.
/// v2 added the optional `percentiles` section (latency quantiles
/// sourced from [`LogHistogram`], stamped with its error bound).
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// One measured quantity.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Sample name, unique within its section (e.g. `events_processed`).
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Unit string (e.g. `"events"`, `"s"`, `"bytes"`, `"1/s"`).
    pub unit: String,
}

impl Sample {
    /// Creates a sample.
    pub fn new(name: impl Into<String>, value: f64, unit: impl Into<String>) -> Self {
        Sample {
            name: name.into(),
            value,
            unit: unit.into(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{}: {{\"value\": {}, \"unit\": {}}}",
            json_str(&self.name),
            json_f64(self.value),
            json_str(&self.unit)
        )
    }
}

/// A typed experiment report: id + config echo + segregated samples.
///
/// Built fluently:
///
/// ```
/// use nezha_sim::report::BenchReport;
///
/// let r = BenchReport::new("bench.testbed")
///     .config("cores", 4)
///     .metric("events_processed", 123456.0, "events")
///     .timing("events_per_wall_sec", 2.5e6, "1/s");
/// assert_eq!(r.get("events_processed"), Some(123456.0));
/// assert!(r.deterministic_json() == r.clone().deterministic_json());
/// ```
#[derive(Clone, Debug, Default)]
pub struct BenchReport {
    /// Report id (experiment id, optionally `.`-qualified by config).
    pub id: String,
    config: Vec<(String, String)>,
    deterministic: Vec<Sample>,
    percentiles: Vec<(String, HistSummary)>,
    timing: Vec<Sample>,
    /// Optional raw metrics snapshot attached by experiments that also
    /// export the legacy one-line snapshot format.
    pub snapshot: Option<MetricsSnapshot>,
}

impl BenchReport {
    /// Starts an empty report.
    pub fn new(id: impl Into<String>) -> Self {
        BenchReport {
            id: id.into(),
            ..BenchReport::default()
        }
    }

    /// Echoes one configuration knob (part of the deterministic payload).
    pub fn config(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.config.push((key.into(), value.to_string()));
        self
    }

    /// Adds a deterministic sample (a pure function of the seed).
    pub fn metric(mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) -> Self {
        self.deterministic.push(Sample::new(name, value, unit));
        self
    }

    /// Adds a named latency-percentile block sourced from a
    /// [`LogHistogram`] (part of the deterministic payload; quantiles
    /// carry the histogram's documented relative-error bound).
    pub fn percentiles(mut self, name: impl Into<String>, hist: &LogHistogram) -> Self {
        self.percentiles.push((name.into(), hist.summary()));
        self
    }

    /// Adds a wall-clock sample (machine- and run-dependent).
    pub fn timing(mut self, name: impl Into<String>, value: f64, unit: impl Into<String>) -> Self {
        self.timing.push(Sample::new(name, value, unit));
        self
    }

    /// Attaches the experiment's metrics snapshot (for the legacy
    /// one-line snapshot export alongside the typed report).
    pub fn with_snapshot(mut self, snap: MetricsSnapshot) -> Self {
        self.snapshot = Some(snap);
        self
    }

    /// Looks a sample up by name, deterministic section first.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.deterministic
            .iter()
            .chain(self.timing.iter())
            .find(|s| s.name == name)
            .map(|s| s.value)
    }

    /// The deterministic samples, in insertion order.
    pub fn deterministic_samples(&self) -> &[Sample] {
        &self.deterministic
    }

    /// The timing samples, in insertion order.
    pub fn timing_samples(&self) -> &[Sample] {
        &self.timing
    }

    /// The percentile blocks, in insertion order.
    pub fn percentile_sections(&self) -> &[(String, HistSummary)] {
        &self.percentiles
    }

    /// The echoed configuration, in insertion order.
    pub fn config_entries(&self) -> &[(String, String)] {
        &self.config
    }

    fn render(&self, include_timing: bool) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"schema_version\": {},\n  \"id\": {},\n  \"config\": {{",
            BENCH_SCHEMA_VERSION,
            json_str(&self.id)
        );
        for (i, (k, v)) in self.config.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {}", json_str(k), json_str(v));
        }
        out.push_str("\n  },\n  \"deterministic\": {");
        for (i, s) in self.deterministic.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}", s.json());
        }
        out.push_str("\n  }");
        if !self.percentiles.is_empty() {
            out.push_str(",\n  \"percentiles\": {");
            for (i, (name, s)) in self.percentiles.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n    {}: {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                     \"p999\": {}, \"max\": {}, \"rel_error_bound\": {}}}",
                    json_str(name),
                    s.count,
                    json_f64(s.p50),
                    json_f64(s.p90),
                    json_f64(s.p99),
                    json_f64(s.p999),
                    json_f64(s.max),
                    json_f64(REL_ERROR_BOUND)
                );
            }
            out.push_str("\n  }");
        }
        if include_timing {
            out.push_str(",\n  \"timing\": {");
            for (i, s) in self.timing.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\n    {}", s.json());
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Full JSON: deterministic payload plus the segregated timing block.
    pub fn to_json(&self) -> String {
        self.render(true)
    }

    /// JSON of the deterministic payload only — what same-seed runs must
    /// reproduce byte-for-byte and what regression gates diff.
    pub fn deterministic_json(&self) -> String {
        self.render(false)
    }
}

/// Renders several reports as one schema-versioned JSON document — the
/// shape of the checked-in `BENCH_*.json` trajectory files.
pub fn reports_json(phase: &str, reports: &[BenchReport]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n\"schema_version\": {},\n\"phase\": {},\n\"reports\": [\n",
        BENCH_SCHEMA_VERSION,
        json_str(phase)
    );
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(r.to_json().trim_end());
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport::new("bench.testbed")
            .config("cores", 4)
            .config("seed", 0x4e5a)
            .metric("events_processed", 1_234_567.0, "events")
            .metric("sim_seconds", 2.5, "s")
            .timing("wall_seconds", 0.731, "s")
            .timing("events_per_wall_sec", 1.69e6, "1/s")
    }

    #[test]
    fn lookup_spans_both_sections() {
        let r = sample_report();
        assert_eq!(r.get("sim_seconds"), Some(2.5));
        assert_eq!(r.get("wall_seconds"), Some(0.731));
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn deterministic_json_excludes_timing() {
        let r = sample_report();
        let d = r.deterministic_json();
        assert!(d.contains("\"events_processed\""));
        assert!(!d.contains("\"timing\""));
        assert!(!d.contains("wall_seconds"));
        let full = r.to_json();
        assert!(full.contains("\"timing\""));
        assert!(full.contains("wall_seconds"));
    }

    #[test]
    fn same_content_renders_identically() {
        assert_eq!(sample_report().to_json(), sample_report().to_json());
    }

    #[test]
    fn schema_version_is_stamped() {
        assert!(sample_report()
            .to_json()
            .starts_with("{\n  \"schema_version\": 2,"));
        let doc = reports_json("pre-optimization", &[sample_report()]);
        assert!(doc.contains("\"phase\": \"pre-optimization\""));
        assert!(doc.contains("\"reports\": ["));
    }

    #[test]
    fn percentile_section_renders_when_present() {
        let plain = sample_report();
        assert!(!plain.to_json().contains("\"percentiles\""));
        let mut h = LogHistogram::new();
        for v in [0.001, 0.002, 0.004, 0.1] {
            h.record(v);
        }
        let r = sample_report().percentiles("conn_latency", &h);
        assert_eq!(r.percentile_sections().len(), 1);
        let d = r.deterministic_json();
        assert!(d.contains("\"percentiles\": {"));
        assert!(d.contains("\"conn_latency\": {\"count\": 4,"));
        assert!(d.contains("\"rel_error_bound\": 0.0078125"));
        assert_eq!(d, r.clone().deterministic_json(), "rendering is pure");
    }
}

//! Interned dense indices: the hot-path replacements for per-packet
//! `BTreeMap` lookups.
//!
//! Two structures, both fully deterministic:
//!
//! * [`Slab`] — an arena of `u32`-addressed slots with a LIFO free list.
//!   Used to park large payloads (packets) outside the event queue so a
//!   queued event is a handful of bytes instead of a 200-byte copy on
//!   every heap sift.
//! * [`DenseMap`] — a hash-indexed map whose entries live in one dense,
//!   insertion-ordered `Vec`. Lookups probe a private open-addressing
//!   table keyed by a **fixed** multiply-xor hash (no per-process
//!   randomization, unlike `std::collections::HashMap`); iteration walks
//!   the dense vector, never the hash table.
//!
//! ## Determinism argument (lint rule D3)
//!
//! D3's contract is that determinism requires ordered *iteration*, not
//! ordered *lookup*: a lookup by key returns the same value whatever the
//! bucket layout, so hash-distributing the index is free. Iteration
//! order here is a pure function of the insert/remove call sequence
//! (insertion order, with `swap_remove` backfill on removal) — same
//! seed, same calls, same order, every run, on every platform. What the
//! map does **not** provide is key-sorted order; call sites whose output
//! is order-visible must sort explicitly (see `DESIGN.md`).

use std::hash::{Hash, Hasher};

/// A deterministic, fixed-key `fx`-style hasher: multiply-xor over the
/// written words. Quality is ample for the short keys used on the
/// datapath (ids, 5-tuples) and hashing is a few cycles — the point of
/// replacing the `BTreeMap`'s pointer-chasing comparisons.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher64 {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher64 {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche so low bits depend on every input word (the
        // index table masks to low bits).
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// Hashes one key with the fixed-seed [`FxHasher64`].
#[inline]
pub fn fx_hash<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut h = FxHasher64::default();
    key.hash(&mut h);
    h.finish()
}

const EMPTY: u32 = u32::MAX;
const TOMBSTONE: u32 = u32::MAX - 1;

/// A hash-indexed map with dense, insertion-ordered storage.
///
/// * `get`/`insert`/`remove` are O(1) expected via open addressing;
/// * `iter` walks entries in deterministic (insertion, with removal
///   backfill) order — never the hash table;
/// * at most `u32::MAX - 2` entries.
#[derive(Clone, Debug)]
pub struct DenseMap<K, V> {
    /// Dense keys, parallel to `values`. Kept in a separate array so a
    /// probe's key comparison walks a tight key-only stride — with a
    /// value-heavy map (e.g. a session table) the values would otherwise
    /// drag a full entry line into cache per compared key.
    keys: Vec<K>,
    values: Vec<V>,
    index: Vec<u32>,
    tombstones: usize,
}

impl<K: Hash + Eq, V> std::ops::Index<&K> for DenseMap<K, V> {
    type Output = V;

    /// Panics when `key` is absent, like the standard maps.
    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry found for key")
    }
}

impl<K, V> Default for DenseMap<K, V> {
    fn default() -> Self {
        DenseMap {
            keys: Vec::new(),
            values: Vec::new(),
            index: Vec::new(),
            tombstones: 0,
        }
    }
}

impl<K: Hash + Eq, V> DenseMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        DenseMap::default()
    }

    /// An empty map with room for `cap` entries before any rehash.
    pub fn with_capacity(cap: usize) -> Self {
        let mut m = DenseMap {
            keys: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
            index: Vec::new(),
            tombstones: 0,
        };
        m.rebuild_index((cap * 2).next_power_of_two().max(8));
        m
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    #[inline]
    fn mask(&self) -> usize {
        self.index.len() - 1
    }

    /// Finds the index-table slot for `key`: `Ok(slot)` when present,
    /// `Err(first_free_slot)` when absent.
    #[inline]
    fn probe(&self, key: &K) -> Result<usize, usize> {
        debug_assert!(!self.index.is_empty());
        let mask = self.mask();
        let mut slot = (fx_hash(key) as usize) & mask;
        let mut first_free = None;
        loop {
            match self.index[slot] {
                EMPTY => return Err(first_free.unwrap_or(slot)),
                TOMBSTONE => {
                    first_free.get_or_insert(slot);
                }
                i => {
                    if self.keys[i as usize] == *key {
                        return Ok(slot);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    fn rebuild_index(&mut self, size: usize) {
        debug_assert!(size.is_power_of_two() && size > self.keys.len());
        self.index.clear();
        self.index.resize(size, EMPTY);
        self.tombstones = 0;
        let mask = size - 1;
        for (i, k) in self.keys.iter().enumerate() {
            let mut slot = (fx_hash(k) as usize) & mask;
            while self.index[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = i as u32;
        }
    }

    /// Grows/cleans the index when load (live + tombstones) passes 7/8.
    fn maybe_grow(&mut self) {
        if self.index.is_empty() {
            self.rebuild_index(8);
        } else if (self.keys.len() + self.tombstones) * 8 >= self.index.len() * 7 {
            let target = (self.keys.len() * 2).next_power_of_two().max(8);
            self.rebuild_index(target.max(self.index.len()));
        }
    }

    /// Looks up a key.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        if self.keys.is_empty() {
            return None;
        }
        self.probe(key)
            .ok()
            .map(|slot| &self.values[self.index[slot] as usize])
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if self.keys.is_empty() {
            return None;
        }
        match self.probe(key) {
            Ok(slot) => {
                let i = self.index[slot] as usize;
                Some(&mut self.values[i])
            }
            Err(_) => None,
        }
    }

    /// True when `key` is present.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        !self.keys.is_empty() && self.probe(key).is_ok()
    }

    /// Inserts, returning the previous value for `key` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.maybe_grow();
        match self.probe(&key) {
            Ok(slot) => {
                let i = self.index[slot] as usize;
                Some(std::mem::replace(&mut self.values[i], value))
            }
            Err(free) => {
                assert!(self.keys.len() < (TOMBSTONE as usize), "DenseMap full");
                if self.index[free] == TOMBSTONE {
                    self.tombstones -= 1;
                }
                self.index[free] = self.keys.len() as u32;
                self.keys.push(key);
                self.values.push(value);
                None
            }
        }
    }

    /// Removes `key`, backfilling the dense storage from the last entry
    /// (`swap_remove`) so storage stays gap-free. Iteration order after
    /// a removal is therefore not insertion order, but it remains a pure
    /// function of the call sequence — deterministic across runs.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        if self.keys.is_empty() {
            return None;
        }
        let slot = self.probe(key).ok()?;
        let dense = self.index[slot] as usize;
        self.index[slot] = TOMBSTONE;
        self.tombstones += 1;
        self.keys.swap_remove(dense);
        let v = self.values.swap_remove(dense);
        if dense < self.keys.len() {
            // The former last entry moved into `dense`; walk its probe
            // chain for the slot still holding its old dense index.
            let moved_old = self.keys.len() as u32;
            let mask = self.mask();
            let mut slot = (fx_hash(&self.keys[dense]) as usize) & mask;
            while self.index[slot] != moved_old {
                slot = (slot + 1) & mask;
            }
            self.index[slot] = dense as u32;
        }
        Some(v)
    }

    /// Keeps only entries for which `f` returns true, preserving the
    /// relative order of survivors; the index is rebuilt afterwards.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        let mut w = 0;
        for r in 0..self.keys.len() {
            if f(&self.keys[r], &mut self.values[r]) {
                self.keys.swap(w, r);
                self.values.swap(w, r);
                w += 1;
            }
        }
        self.keys.truncate(w);
        self.values.truncate(w);
        let size = self.index.len().max(8);
        self.rebuild_index(size);
    }

    /// Drops all entries, keeping allocations.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
        for s in &mut self.index {
            *s = EMPTY;
        }
        self.tombstones = 0;
    }

    /// Iterates `(key, value)` in dense-storage order (deterministic;
    /// not key-sorted — see the module docs).
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.keys.iter().zip(self.values.iter())
    }

    /// Mutable iteration in dense-storage order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.keys.iter().zip(self.values.iter_mut())
    }

    /// Iterates values in dense-storage order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.values.iter()
    }

    /// Mutable value iteration in dense-storage order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.values.iter_mut()
    }

    /// Iterates keys in dense-storage order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.keys.iter()
    }
}

/// An open-addressing map storing key/value pairs *inline* in the hash
/// table — one expected cache line per lookup, versus two for
/// [`DenseMap`] (slot array, then dense storage).
///
/// The trade: there is **no iteration at all** (and no removal), which is
/// what makes it trivially safe under lint rule D3 — a map that cannot be
/// iterated cannot leak hash order into behavior. Use it for large
/// lookup-only caches on the per-packet path (e.g. the FE flow cache);
/// use `DenseMap` whenever entries must be walked or removed.
#[derive(Clone, Debug)]
pub struct FlatMap<K, V> {
    slots: Vec<Option<(K, V)>>,
    len: usize,
}

impl<K, V> Default for FlatMap<K, V> {
    fn default() -> Self {
        FlatMap {
            slots: Vec::new(),
            len: 0,
        }
    }
}

impl<K: Hash + Eq, V> FlatMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        FlatMap::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Looks up a key.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut slot = (fx_hash(key) as usize) & mask;
        loop {
            match &self.slots[slot] {
                None => return None,
                Some((k, v)) if k == key => return Some(v),
                Some(_) => slot = (slot + 1) & mask,
            }
        }
    }

    /// Inserts, returning the previous value for `key` if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.len * 8 >= self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.slots.len() - 1;
        let mut slot = (fx_hash(&key) as usize) & mask;
        loop {
            match &mut self.slots[slot] {
                s @ None => {
                    *s = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => slot = (slot + 1) & mask,
            }
        }
    }

    fn grow(&mut self) {
        let new_size = (self.slots.len() * 2).max(8);
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_size, || None);
        let mask = new_size - 1;
        for e in old.into_iter().flatten() {
            let mut slot = (fx_hash(&e.0) as usize) & mask;
            while self.slots[slot].is_some() {
                slot = (slot + 1) & mask;
            }
            self.slots[slot] = Some(e);
        }
    }

    /// Drops all entries, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }
}

/// A `u32`-addressed arena with a LIFO free list.
///
/// `insert` returns a stable id; `take` moves the value out and recycles
/// the id. Ids are recycled most-recently-freed first, so the id
/// sequence — like everything else here — is a pure function of the
/// call sequence.
#[derive(Clone, Debug, Default)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// An empty slab with capacity for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            free: Vec::new(),
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// True when no slots are occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Parks a value, returning its id.
    #[inline]
    pub fn insert(&mut self, value: T) -> u32 {
        match self.free.pop() {
            Some(id) => {
                debug_assert!(self.slots[id as usize].is_none());
                self.slots[id as usize] = Some(value);
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("slab overflow");
                self.slots.push(Some(value));
                id
            }
        }
    }

    /// Moves the value at `id` out, recycling the slot.
    ///
    /// Panics when `id` is vacant — a vacant take means an event was
    /// duplicated or double-freed, which must never happen.
    #[inline]
    pub fn take(&mut self, id: u32) -> T {
        let v = self.slots[id as usize].take().expect("vacant slab slot");
        self.free.push(id);
        v
    }

    /// Borrows the value at `id`, if occupied.
    pub fn get(&self, id: u32) -> Option<&T> {
        self.slots.get(id as usize).and_then(|s| s.as_ref())
    }

    /// Mutably borrows the value at `id`, if occupied.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.slots.get_mut(id as usize).and_then(|s| s.as_mut())
    }

    /// Drops every value and recyclable id.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
    }
}

/// A value interner: deduplicates equal values into a dense, append-only
/// table and hands out `u32` ids.
///
/// Hot-path consumers store the 4-byte id instead of the value itself —
/// a cached-flow table whose entries embed a 64-byte pre-action pair
/// shrinks to a quarter of its footprint when the distinct values number
/// in the hundreds, which is what keeps big per-packet lookup tables
/// cache-resident. Ids are assigned in first-intern order, so like
/// everything else in this module the id sequence is a pure function of
/// the call sequence, and `resolve` is a bare slice index.
#[derive(Clone, Debug)]
pub struct Interner<T> {
    values: Vec<T>,
    ids: DenseMap<T, u32>,
}

impl<T: Hash + Eq> Default for Interner<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Hash + Eq> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            values: Vec::new(),
            ids: DenseMap::new(),
        }
    }

    /// Number of distinct values interned.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl<T: Hash + Eq + Copy> Interner<T> {
    /// Returns the id for `value`, assigning the next dense id on first
    /// sight.
    pub fn intern(&mut self, value: T) -> u32 {
        if let Some(&id) = self.ids.get(&value) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("interner overflow");
        self.values.push(value);
        self.ids.insert(value, id);
        id
    }

    /// The value behind `id`.
    ///
    /// Panics when `id` was not produced by this interner.
    #[inline]
    pub fn resolve(&self, id: u32) -> &T {
        &self.values[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m = DenseMap::new();
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("b", 2), None);
        assert_eq!(m.insert("a", 10), Some(1));
        assert_eq!(m.get(&"a"), Some(&10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&"a"), Some(10));
        assert_eq!(m.remove(&"a"), None);
        assert_eq!(m.get(&"a"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn tracks_btreemap_through_mixed_ops() {
        // Deterministic pseudo-random op mix, mirrored into a BTreeMap.
        let mut dense: DenseMap<u64, u64> = DenseMap::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0x1234_5678;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 512;
            match x % 3 {
                0 | 1 => {
                    assert_eq!(dense.insert(key, i), model.insert(key, i));
                }
                _ => {
                    assert_eq!(dense.remove(&key), model.remove(&key));
                }
            }
            assert_eq!(dense.len(), model.len());
        }
        for (k, v) in model.iter() {
            assert_eq!(dense.get(k), Some(v));
        }
        let mut seen: Vec<u64> = dense.keys().copied().collect();
        seen.sort_unstable();
        let expect: Vec<u64> = model.keys().copied().collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn iteration_is_insertion_ordered_without_removals() {
        let mut m = DenseMap::new();
        for k in [5u32, 3, 9, 1, 7] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![5, 3, 9, 1, 7]);
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m = DenseMap::new();
            for k in 0u64..200 {
                m.insert(k * 7 % 101, k);
            }
            for k in 0u64..50 {
                m.remove(&(k * 13 % 101));
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn retain_preserves_survivor_order() {
        let mut m = DenseMap::new();
        for k in 0u32..100 {
            m.insert(k, k);
        }
        m.retain(|k, _| k % 3 == 0);
        let keys: Vec<u32> = m.keys().copied().collect();
        let expect: Vec<u32> = (0..100).filter(|k| k % 3 == 0).collect();
        assert_eq!(keys, expect);
        assert_eq!(m.get(&33), Some(&33));
        assert_eq!(m.get(&34), None);
    }

    #[test]
    fn clear_resets() {
        let mut m = DenseMap::new();
        m.insert(1u8, 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(&1), None);
        m.insert(1u8, 2);
        assert_eq!(m.get(&1), Some(&2));
    }

    #[test]
    fn flat_map_tracks_btreemap_through_inserts() {
        let mut flat: FlatMap<u64, u64> = FlatMap::new();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut x: u64 = 0x9e37_79b9;
        for i in 0..10_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x >> 33) % 512;
            assert_eq!(flat.insert(key, i), model.insert(key, i));
            assert_eq!(flat.len(), model.len());
        }
        for (k, v) in model.iter() {
            assert_eq!(flat.get(k), Some(v));
        }
        assert_eq!(flat.get(&u64::MAX), None);
        flat.clear();
        assert!(flat.is_empty());
        assert_eq!(flat.get(&1), None);
        flat.insert(1, 7);
        assert_eq!(flat.get(&1), Some(&7));
    }

    #[test]
    fn fx_hash_is_stable_across_calls() {
        let k = (7u64, 9u32);
        assert_eq!(fx_hash(&k), fx_hash(&k));
        assert_ne!(fx_hash(&(1u64, 2u32)), fx_hash(&(2u64, 1u32)));
    }

    #[test]
    fn slab_recycles_lifo() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.take(a), "a");
        // Most-recently-freed id is reused first.
        assert_eq!(s.insert("c"), a);
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.take(b), "b");
        assert_eq!(s.take(a), "c");
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "vacant slab slot")]
    fn slab_vacant_take_panics() {
        let mut s: Slab<u8> = Slab::new();
        let id = s.insert(1);
        s.take(id);
        s.take(id);
    }
}

//! The datacenter fabric: a three-tier Clos-style topology model.
//!
//! Servers sit under top-of-rack (ToR) switches, racks under aggregation
//! switches (one logical aggregation layer per pod), pods under the core.
//! The paper's FE-selection strategy prefers "idle vSwitches under the same
//! ToR switch" and widens to aggregation/core only when needed (§4.2.1,
//! Appendix B.1) — so the topology must answer *which servers share a ToR*
//! and *how far apart two servers are*.
//!
//! Latency model: each switch traversal costs a fixed per-hop latency;
//! serialization adds `bytes × 8 / bandwidth`. Hop counts: same server 0,
//! same rack 2 (up to ToR, down), same pod 4, cross-pod 6. Modern fabrics
//! are provisioned with headroom (paper §6.4), so links themselves are not
//! a queueing bottleneck in our model — the vSwitch CPU is.

use crate::time::SimDuration;
use nezha_types::ServerId;
use serde::{Deserialize, Serialize};

/// Shape and speed parameters of the fabric.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Servers under each ToR switch.
    pub servers_per_rack: u32,
    /// Racks in each pod (sharing an aggregation layer).
    pub racks_per_pod: u32,
    /// Number of pods.
    pub pods: u32,
    /// Link bandwidth in gigabits per second (100 Gbps+ in the paper).
    pub link_gbps: f64,
    /// Latency of one switch traversal.
    pub per_hop: SimDuration,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            servers_per_rack: 32,
            racks_per_pod: 8,
            pods: 4,
            link_gbps: 100.0,
            per_hop: SimDuration::from_micros(5),
        }
    }
}

/// The instantiated fabric.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Topology {
    cfg: TopologyConfig,
}

impl Topology {
    /// Builds a fabric from its configuration.
    pub fn new(cfg: TopologyConfig) -> Self {
        assert!(cfg.servers_per_rack > 0 && cfg.racks_per_pod > 0 && cfg.pods > 0);
        assert!(cfg.link_gbps > 0.0);
        Topology { cfg }
    }

    /// The configuration this fabric was built from.
    pub fn config(&self) -> &TopologyConfig {
        &self.cfg
    }

    /// Total number of servers.
    pub fn total_servers(&self) -> u32 {
        self.cfg.servers_per_rack * self.cfg.racks_per_pod * self.cfg.pods
    }

    /// Rack index of a server.
    pub fn rack_of(&self, s: ServerId) -> u32 {
        s.0 / self.cfg.servers_per_rack
    }

    /// Pod index of a server.
    pub fn pod_of(&self, s: ServerId) -> u32 {
        self.rack_of(s) / self.cfg.racks_per_pod
    }

    /// True when both servers hang off the same ToR.
    pub fn same_rack(&self, a: ServerId, b: ServerId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Switch traversals between two servers (0 / 2 / 4 / 6).
    pub fn hops(&self, a: ServerId, b: ServerId) -> u32 {
        if a == b {
            0
        } else if self.same_rack(a, b) {
            2
        } else if self.pod_of(a) == self.pod_of(b) {
            4
        } else {
            6
        }
    }

    /// One-way latency for `bytes` between two servers: propagation
    /// (per-hop × hops) plus serialization at the configured link rate.
    pub fn latency(&self, a: ServerId, b: ServerId, bytes: usize) -> SimDuration {
        let ser = SimDuration::from_secs_f64(bytes as f64 * 8.0 / (self.cfg.link_gbps * 1e9));
        if a == b {
            // Loopback through the local vSwitch: serialization only.
            return ser;
        }
        SimDuration(self.cfg.per_hop.nanos() * self.hops(a, b) as u64) + ser
    }

    /// All servers sharing `s`'s rack, excluding `s` itself. The candidate
    /// pool for FE selection at ToR scope.
    pub fn rack_peers(&self, s: ServerId) -> Vec<ServerId> {
        let rack = self.rack_of(s);
        let base = rack * self.cfg.servers_per_rack;
        (base..base + self.cfg.servers_per_rack)
            .map(ServerId)
            .filter(|&p| p != s)
            .collect()
    }

    /// All servers in `s`'s pod, excluding `s`. The widened candidate pool
    /// when the rack has too few idle vSwitches (Appendix B.1).
    pub fn pod_peers(&self, s: ServerId) -> Vec<ServerId> {
        let pod = self.pod_of(s);
        let per_pod = self.cfg.servers_per_rack * self.cfg.racks_per_pod;
        let base = pod * per_pod;
        (base..base + per_pod)
            .map(ServerId)
            .filter(|&p| p != s)
            .collect()
    }

    /// Every server in the fabric, excluding `s`. The final widening step.
    pub fn all_peers(&self, s: ServerId) -> Vec<ServerId> {
        (0..self.total_servers())
            .map(ServerId)
            .filter(|&p| p != s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(TopologyConfig {
            servers_per_rack: 4,
            racks_per_pod: 2,
            pods: 3,
            link_gbps: 100.0,
            per_hop: SimDuration::from_micros(5),
        })
    }

    #[test]
    fn counts_and_indices() {
        let t = topo();
        assert_eq!(t.total_servers(), 24);
        assert_eq!(t.rack_of(ServerId(0)), 0);
        assert_eq!(t.rack_of(ServerId(5)), 1);
        assert_eq!(t.pod_of(ServerId(7)), 0);
        assert_eq!(t.pod_of(ServerId(8)), 1);
        assert_eq!(t.config().pods, 3);
    }

    #[test]
    fn hop_counts() {
        let t = topo();
        assert_eq!(t.hops(ServerId(1), ServerId(1)), 0);
        assert_eq!(t.hops(ServerId(0), ServerId(3)), 2); // same rack
        assert_eq!(t.hops(ServerId(0), ServerId(4)), 4); // same pod
        assert_eq!(t.hops(ServerId(0), ServerId(8)), 6); // cross pod
                                                         // Symmetry.
        assert_eq!(t.hops(ServerId(8), ServerId(0)), 6);
    }

    #[test]
    fn latency_includes_serialization() {
        let t = topo();
        // Same rack, 0 bytes: exactly 2 hops of propagation.
        assert_eq!(
            t.latency(ServerId(0), ServerId(1), 0),
            SimDuration::from_micros(10)
        );
        // 12500 bytes at 100 Gbps = 1 us serialization.
        let l = t.latency(ServerId(0), ServerId(1), 12_500);
        assert_eq!(l, SimDuration::from_micros(11));
        // Loopback is serialization only.
        assert_eq!(
            t.latency(ServerId(0), ServerId(0), 12_500),
            SimDuration::from_micros(1)
        );
    }

    #[test]
    fn extra_hop_cost_is_tens_of_microseconds() {
        // The paper argues the BE->FE detour adds "a few tens of us" at
        // most; with default config one extra rack-local traversal is 10us.
        let t = Topology::new(TopologyConfig::default());
        let extra = t.latency(ServerId(0), ServerId(1), 1500);
        assert!(extra < SimDuration::from_micros(50), "extra hop {extra}");
    }

    #[test]
    fn rack_peers_share_rack_and_exclude_self() {
        let t = topo();
        let peers = t.rack_peers(ServerId(5));
        assert_eq!(peers, vec![ServerId(4), ServerId(6), ServerId(7)]);
        assert!(peers.iter().all(|&p| t.same_rack(p, ServerId(5))));
    }

    #[test]
    fn pod_peers_and_all_peers_scopes() {
        let t = topo();
        let pod = t.pod_peers(ServerId(0));
        assert_eq!(pod.len(), 7);
        assert!(pod.iter().all(|&p| t.pod_of(p) == 0));
        let all = t.all_peers(ServerId(0));
        assert_eq!(all.len(), 23);
    }
}

//! Deterministic fault injection: scripted chaos on the simulated clock.
//!
//! The paper's fault-tolerance story (Fig. 14, Appendix C) covers much
//! more than a clean FE crash: gray-slow members, correlated rack
//! outages, lossy links, controller blackouts, and lost notify packets.
//! This module scripts all of them as a [`FaultPlan`] — a time-ordered
//! list of [`FaultEvent`]s the embedding event loop replays — plus the
//! [`FaultState`] that answers per-packet questions ("does this hop drop
//! this packet?") from a seeded RNG stream.
//!
//! Everything here runs on [`SimTime`] and [`SimRng`]: two runs with the
//! same seed and the same plan replay the same faults packet-for-packet,
//! which is what makes chaos scenarios regression-testable.

use crate::rng::SimRng;
use crate::time::SimTime;
use nezha_types::ServerId;
use std::collections::{BTreeMap, BTreeSet};

/// Parameters of a Gilbert–Elliott two-state burst-loss channel.
///
/// The channel alternates between a *good* and a *bad* state; each
/// per-packet decision first applies the state transition, then samples
/// a loss with the state's probability. Bursts emerge from the sojourn
/// times, matching how real fabric gray failures cluster losses.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GilbertElliott {
    /// Per-decision probability of entering the bad state from good.
    pub p_enter: f64,
    /// Per-decision probability of leaving the bad state back to good.
    pub p_exit: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GilbertElliott {
    /// A moderately bursty channel: rare entries into a long-ish bad
    /// state that loses most packets, near-lossless otherwise.
    pub fn bursty() -> Self {
        GilbertElliott {
            p_enter: 0.05,
            p_exit: 0.25,
            loss_good: 0.0,
            loss_bad: 0.75,
        }
    }
}

/// One scripted fault transition.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// Hard-crash a server's SmartNIC: it stops processing packets and
    /// stops answering health probes.
    Crash {
        /// The crashing server.
        server: ServerId,
    },
    /// Bring a crashed server back (rebooted SmartNIC).
    Restart {
        /// The restarting server.
        server: ServerId,
    },
    /// Gray failure: the server keeps running but every cycle charge is
    /// scaled by `multiplier` — a slow, not dead, member.
    GraySlow {
        /// The degrading server.
        server: ServerId,
        /// Cycle-cost multiplier (> 1 slows the vSwitch down).
        multiplier: f64,
    },
    /// End a gray failure (multiplier back to 1).
    GrayRecover {
        /// The recovering server.
        server: ServerId,
    },
    /// Uniform random loss on the fabric path between two servers, both
    /// directions.
    LinkLoss {
        /// One endpoint.
        a: ServerId,
        /// The other endpoint.
        b: ServerId,
        /// Per-packet loss probability in `[0, 1]`.
        loss: f64,
    },
    /// Bursty loss on the path between two servers (both directions),
    /// driven by an independent Gilbert–Elliott channel per direction.
    BurstyLoss {
        /// One endpoint.
        a: ServerId,
        /// The other endpoint.
        b: ServerId,
        /// Channel parameters.
        model: GilbertElliott,
    },
    /// Remove any loss model from the path between two servers.
    LinkHeal {
        /// One endpoint.
        a: ServerId,
        /// The other endpoint.
        b: ServerId,
    },
    /// Rack/pod partition: every path crossing from `left` to `right`
    /// (or back) blackholes until [`FaultKind::HealPartition`].
    Partition {
        /// Servers on one side of the cut.
        left: Vec<ServerId>,
        /// Servers on the other side.
        right: Vec<ServerId>,
    },
    /// Heal the active partition.
    HealPartition,
    /// Controller outage: the centralized controller and health monitor
    /// stop making decisions (ticks still reschedule, but act as no-ops).
    ControllerOutage,
    /// End the controller outage.
    ControllerRecover,
    /// Drop FE→BE notify packets with the given probability — the
    /// §3.2.2 state-update channel degrades while data packets survive.
    NotifyDrop {
        /// Per-notify drop probability in `[0, 1]`.
        loss: f64,
    },
    /// Stop dropping notify packets.
    NotifyDropStop,
}

/// A fault transition at a scheduled simulated time.
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// When the transition fires.
    pub at: SimTime,
    /// What changes.
    pub kind: FaultKind,
}

/// A scripted, time-ordered schedule of fault transitions.
///
/// Built fluently, then handed to the embedding event loop which
/// schedules each event on its engine:
///
/// ```
/// use nezha_sim::fault::FaultPlan;
/// use nezha_sim::time::SimTime;
/// use nezha_types::ServerId;
///
/// let t = SimTime::ZERO + nezha_sim::time::SimDuration::from_secs(6);
/// let plan = FaultPlan::new()
///     .crash(t, ServerId(3))
///     .restart(t + nezha_sim::time::SimDuration::from_secs(4), ServerId(3));
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds an arbitrary fault transition at `at`.
    pub fn add(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Schedules a server crash.
    pub fn crash(self, at: SimTime, server: ServerId) -> Self {
        self.add(at, FaultKind::Crash { server })
    }

    /// Schedules a server restart.
    pub fn restart(self, at: SimTime, server: ServerId) -> Self {
        self.add(at, FaultKind::Restart { server })
    }

    /// Schedules the start of a gray-slow failure.
    pub fn gray_slow(self, at: SimTime, server: ServerId, multiplier: f64) -> Self {
        self.add(at, FaultKind::GraySlow { server, multiplier })
    }

    /// Schedules the end of a gray-slow failure.
    pub fn gray_recover(self, at: SimTime, server: ServerId) -> Self {
        self.add(at, FaultKind::GrayRecover { server })
    }

    /// Schedules uniform random loss on one path.
    pub fn link_loss(self, at: SimTime, a: ServerId, b: ServerId, loss: f64) -> Self {
        self.add(at, FaultKind::LinkLoss { a, b, loss })
    }

    /// Schedules Gilbert–Elliott bursty loss on one path.
    pub fn bursty_loss(self, at: SimTime, a: ServerId, b: ServerId, model: GilbertElliott) -> Self {
        self.add(at, FaultKind::BurstyLoss { a, b, model })
    }

    /// Schedules the removal of any loss model on one path.
    pub fn link_heal(self, at: SimTime, a: ServerId, b: ServerId) -> Self {
        self.add(at, FaultKind::LinkHeal { a, b })
    }

    /// Schedules a partition between two server groups.
    pub fn partition(self, at: SimTime, left: Vec<ServerId>, right: Vec<ServerId>) -> Self {
        self.add(at, FaultKind::Partition { left, right })
    }

    /// Schedules the healing of the active partition.
    pub fn heal_partition(self, at: SimTime) -> Self {
        self.add(at, FaultKind::HealPartition)
    }

    /// Schedules the start of a controller outage.
    pub fn controller_outage(self, at: SimTime) -> Self {
        self.add(at, FaultKind::ControllerOutage)
    }

    /// Schedules the end of a controller outage.
    pub fn controller_recover(self, at: SimTime) -> Self {
        self.add(at, FaultKind::ControllerRecover)
    }

    /// Schedules the start of notify-packet loss.
    pub fn notify_drop(self, at: SimTime, loss: f64) -> Self {
        self.add(at, FaultKind::NotifyDrop { loss })
    }

    /// Schedules the end of notify-packet loss.
    pub fn notify_drop_stop(self, at: SimTime) -> Self {
        self.add(at, FaultKind::NotifyDropStop)
    }

    /// Number of scheduled transitions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no transitions are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled transitions, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Consumes the plan, returning its transitions sorted by time
    /// (stable: same-instant events keep insertion order).
    pub fn into_events(mut self) -> Vec<FaultEvent> {
        self.events.sort_by_key(|e| e.at);
        self.events
    }

    /// Splits the plan into one sub-plan per shard, for sharded event
    /// loops that apply faults only to the partition they own.
    ///
    /// Events addressing one server route to `owner(server)`'s sub-plan;
    /// link events route to both endpoints' owners (once, when the
    /// endpoints share an owner); global conditions (partitions,
    /// controller outages, notify drops) replicate into every sub-plan,
    /// since each shard answers queries against its own [`FaultState`].
    /// Insertion order within each sub-plan follows the original plan, so
    /// `into_events` stays stable per shard.
    pub fn split_by_server(self, shards: u32, owner: impl Fn(ServerId) -> u32) -> Vec<FaultPlan> {
        let mut plans: Vec<FaultPlan> = (0..shards).map(|_| FaultPlan::new()).collect();
        let route = |plans: &mut Vec<FaultPlan>, shard: u32, ev: &FaultEvent| {
            if let Some(plan) = plans.get_mut(shard as usize) {
                plan.events.push(ev.clone());
            }
        };
        for ev in &self.events {
            match &ev.kind {
                FaultKind::Crash { server }
                | FaultKind::Restart { server }
                | FaultKind::GraySlow { server, .. }
                | FaultKind::GrayRecover { server } => {
                    route(&mut plans, owner(*server), ev);
                }
                FaultKind::LinkLoss { a, b, .. }
                | FaultKind::BurstyLoss { a, b, .. }
                | FaultKind::LinkHeal { a, b } => {
                    let (oa, ob) = (owner(*a), owner(*b));
                    route(&mut plans, oa, ev);
                    if ob != oa {
                        route(&mut plans, ob, ev);
                    }
                }
                FaultKind::Partition { .. }
                | FaultKind::HealPartition
                | FaultKind::ControllerOutage
                | FaultKind::ControllerRecover
                | FaultKind::NotifyDrop { .. }
                | FaultKind::NotifyDropStop => {
                    for shard in 0..shards {
                        route(&mut plans, shard, ev);
                    }
                }
            }
        }
        plans
    }
}

/// One active loss model on a directed link.
#[derive(Clone, Copy, Debug)]
enum LinkState {
    /// Uniform i.i.d. loss.
    Uniform { loss: f64 },
    /// Gilbert–Elliott channel with its current state.
    Bursty { model: GilbertElliott, bad: bool },
}

/// The live fault conditions, updated by [`FaultState::apply`] and
/// queried by the embedding event loop on every affected decision.
///
/// All randomness (loss sampling, channel transitions) comes from the
/// seeded [`SimRng`] handed to [`FaultState::new`], so fault outcomes
/// replay bit-for-bit under a fixed seed.
#[derive(Debug)]
pub struct FaultState {
    rng: SimRng,
    crashed: BTreeSet<ServerId>,
    gray: BTreeMap<ServerId, f64>,
    links: BTreeMap<(ServerId, ServerId), LinkState>,
    partition: Option<(BTreeSet<ServerId>, BTreeSet<ServerId>)>,
    controller_down: bool,
    notify_loss: Option<f64>,
    applied: u64,
}

impl FaultState {
    /// Fresh state drawing all randomness from `rng`.
    pub fn new(rng: SimRng) -> Self {
        FaultState {
            rng,
            crashed: BTreeSet::new(),
            gray: BTreeMap::new(),
            links: BTreeMap::new(),
            partition: None,
            controller_down: false,
            notify_loss: None,
            applied: 0,
        }
    }

    /// Applies one fault transition to the live condition set. The
    /// embedding loop is responsible for its own side effects (marking
    /// servers dead, scaling vSwitch cycle costs); this records the
    /// conditions the per-packet queries below are answered from.
    pub fn apply(&mut self, kind: &FaultKind) {
        self.applied += 1;
        match kind {
            FaultKind::Crash { server } => {
                self.crashed.insert(*server);
            }
            FaultKind::Restart { server } => {
                self.crashed.remove(server);
            }
            FaultKind::GraySlow { server, multiplier } => {
                self.gray.insert(*server, *multiplier);
            }
            FaultKind::GrayRecover { server } => {
                self.gray.remove(server);
            }
            FaultKind::LinkLoss { a, b, loss } => {
                self.links
                    .insert((*a, *b), LinkState::Uniform { loss: *loss });
                self.links
                    .insert((*b, *a), LinkState::Uniform { loss: *loss });
            }
            FaultKind::BurstyLoss { a, b, model } => {
                let fresh = LinkState::Bursty {
                    model: *model,
                    bad: false,
                };
                self.links.insert((*a, *b), fresh);
                self.links.insert((*b, *a), fresh);
            }
            FaultKind::LinkHeal { a, b } => {
                self.links.remove(&(*a, *b));
                self.links.remove(&(*b, *a));
            }
            FaultKind::Partition { left, right } => {
                self.partition = Some((
                    left.iter().copied().collect(),
                    right.iter().copied().collect(),
                ));
            }
            FaultKind::HealPartition => {
                self.partition = None;
            }
            FaultKind::ControllerOutage => {
                self.controller_down = true;
            }
            FaultKind::ControllerRecover => {
                self.controller_down = false;
            }
            FaultKind::NotifyDrop { loss } => {
                self.notify_loss = Some(*loss);
            }
            FaultKind::NotifyDropStop => {
                self.notify_loss = None;
            }
        }
    }

    /// Number of transitions applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// True when any scripted fault condition is currently active —
    /// used to attribute in-flight packet loss to faults.
    pub fn any_active(&self) -> bool {
        !self.crashed.is_empty()
            || !self.gray.is_empty()
            || !self.links.is_empty()
            || self.partition.is_some()
            || self.controller_down
            || self.notify_loss.is_some()
    }

    /// True when `server` is crash-scripted and not yet restarted.
    pub fn is_crashed(&self, server: ServerId) -> bool {
        self.crashed.contains(&server)
    }

    /// The gray-slow cycle multiplier for `server` (1 when healthy).
    pub fn cpu_multiplier(&self, server: ServerId) -> f64 {
        self.gray.get(&server).copied().unwrap_or(1.0)
    }

    /// True when the active partition separates `a` from `b`.
    pub fn partitioned(&self, a: ServerId, b: ServerId) -> bool {
        match &self.partition {
            Some((left, right)) => {
                (left.contains(&a) && right.contains(&b))
                    || (left.contains(&b) && right.contains(&a))
            }
            None => false,
        }
    }

    /// True when the centralized controller (and its health monitor) is
    /// blacked out.
    pub fn controller_down(&self) -> bool {
        self.controller_down
    }

    /// Per-packet drop decision for the directed hop `from → to`:
    /// partitions drop deterministically; loss models sample from the
    /// fault RNG (advancing the Gilbert–Elliott channel first).
    pub fn should_drop(&mut self, from: ServerId, to: ServerId) -> bool {
        if self.partitioned(from, to) {
            return true;
        }
        let Some(state) = self.links.get_mut(&(from, to)) else {
            return false;
        };
        match state {
            LinkState::Uniform { loss } => {
                let p = *loss;
                self.rng.chance(p)
            }
            LinkState::Bursty { model, bad } => {
                let flip = if *bad { model.p_exit } else { model.p_enter };
                let m = *model;
                let b = *bad;
                let flipped = self.rng.chance(flip);
                let now_bad = if flipped { !b } else { b };
                let p = if now_bad { m.loss_bad } else { m.loss_good };
                if let Some(LinkState::Bursty { bad, .. }) = self.links.get_mut(&(from, to)) {
                    *bad = now_bad;
                }
                self.rng.chance(p)
            }
        }
    }

    /// Per-notify drop decision (samples the fault RNG only while a
    /// notify-drop fault is active).
    pub fn drop_notify(&mut self) -> bool {
        match self.notify_loss {
            Some(p) => self.rng.chance(p),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn plan_sorts_stably_by_time() {
        let plan = FaultPlan::new()
            .restart(t(9), ServerId(1))
            .crash(t(3), ServerId(1))
            .controller_outage(t(3));
        let evs = plan.into_events();
        assert_eq!(evs.len(), 3);
        assert!(matches!(evs[0].kind, FaultKind::Crash { .. }));
        assert!(matches!(evs[1].kind, FaultKind::ControllerOutage));
        assert!(matches!(evs[2].kind, FaultKind::Restart { .. }));
    }

    #[test]
    fn split_by_server_routes_and_replicates() {
        // Owner: even servers -> shard 0, odd -> shard 1.
        let plan = FaultPlan::new()
            .crash(t(1), ServerId(4))
            .gray_slow(t(2), ServerId(3), 5.0)
            .link_loss(t(3), ServerId(0), ServerId(1), 0.5)
            .link_heal(t(4), ServerId(2), ServerId(6))
            .controller_outage(t(5));
        let plans = plan.split_by_server(2, |s| s.0 % 2);
        assert_eq!(plans.len(), 2);
        // Shard 0: crash(4), link_loss (endpoint 0), link_heal (both even,
        // routed once), outage.
        assert_eq!(plans[0].len(), 4);
        // Shard 1: gray_slow(3), link_loss (endpoint 1), outage.
        assert_eq!(plans[1].len(), 3);
        assert!(plans[1]
            .events()
            .iter()
            .any(|e| matches!(e.kind, FaultKind::ControllerOutage)));
        // Union preserves every transition exactly once per owning shard:
        // 4 + 3 = 5 originals + 2 replicas (link_loss fan-out + outage).
        let union: usize = plans.iter().map(FaultPlan::len).sum();
        assert_eq!(union, 7);
    }

    #[test]
    fn conditions_toggle_and_any_active_tracks_them() {
        let mut st = FaultState::new(SimRng::new(1));
        assert!(!st.any_active());
        st.apply(&FaultKind::GraySlow {
            server: ServerId(2),
            multiplier: 8.0,
        });
        assert!(st.any_active());
        assert_eq!(st.cpu_multiplier(ServerId(2)), 8.0);
        assert_eq!(st.cpu_multiplier(ServerId(3)), 1.0);
        st.apply(&FaultKind::GrayRecover {
            server: ServerId(2),
        });
        assert!(!st.any_active());

        st.apply(&FaultKind::Partition {
            left: vec![ServerId(0), ServerId(1)],
            right: vec![ServerId(8)],
        });
        assert!(st.partitioned(ServerId(1), ServerId(8)));
        assert!(st.partitioned(ServerId(8), ServerId(0)));
        assert!(!st.partitioned(ServerId(0), ServerId(1)));
        assert!(st.should_drop(ServerId(0), ServerId(8)));
        st.apply(&FaultKind::HealPartition);
        assert!(!st.should_drop(ServerId(0), ServerId(8)));
        assert_eq!(st.applied(), 4);
    }

    #[test]
    fn uniform_loss_hits_roughly_its_probability() {
        let mut st = FaultState::new(SimRng::new(7));
        st.apply(&FaultKind::LinkLoss {
            a: ServerId(0),
            b: ServerId(1),
            loss: 0.3,
        });
        let n = 20_000;
        let drops = (0..n)
            .filter(|_| st.should_drop(ServerId(0), ServerId(1)))
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate={rate}");
        // The reverse direction is lossy too.
        assert!((0..200).any(|_| st.should_drop(ServerId(1), ServerId(0))));
        // Unrelated links are clean.
        assert!((0..200).all(|_| !st.should_drop(ServerId(0), ServerId(2))));
    }

    #[test]
    fn bursty_loss_clusters_drops() {
        let mut st = FaultState::new(SimRng::new(9));
        st.apply(&FaultKind::BurstyLoss {
            a: ServerId(0),
            b: ServerId(1),
            model: GilbertElliott {
                p_enter: 0.02,
                p_exit: 0.2,
                loss_good: 0.0,
                loss_bad: 1.0,
            },
        });
        let outcomes: Vec<bool> = (0..20_000)
            .map(|_| st.should_drop(ServerId(0), ServerId(1)))
            .collect();
        let drops = outcomes.iter().filter(|d| **d).count();
        assert!(drops > 0, "channel never entered the bad state");
        // Burstiness: a dropped packet's successor drops far more often
        // than the marginal loss rate (state persistence).
        let after_drop = outcomes
            .windows(2)
            .filter(|w| w[0])
            .filter(|w| w[1])
            .count();
        let p_cond = after_drop as f64 / drops as f64;
        let p_marginal = drops as f64 / outcomes.len() as f64;
        assert!(
            p_cond > 3.0 * p_marginal,
            "not bursty: P(drop|drop)={p_cond:.3} vs P(drop)={p_marginal:.3}"
        );
    }

    #[test]
    fn same_seed_replays_identical_drop_sequences() {
        let mk = || {
            let mut st = FaultState::new(SimRng::new(42));
            st.apply(&FaultKind::BurstyLoss {
                a: ServerId(0),
                b: ServerId(1),
                model: GilbertElliott::bursty(),
            });
            st.apply(&FaultKind::NotifyDrop { loss: 0.4 });
            (0..2000)
                .map(|i| {
                    if i % 3 == 0 {
                        st.drop_notify()
                    } else {
                        st.should_drop(ServerId(0), ServerId(1))
                    }
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn crash_and_controller_flags() {
        let mut st = FaultState::new(SimRng::new(3));
        st.apply(&FaultKind::Crash {
            server: ServerId(5),
        });
        assert!(st.is_crashed(ServerId(5)));
        st.apply(&FaultKind::ControllerOutage);
        assert!(st.controller_down());
        st.apply(&FaultKind::Restart {
            server: ServerId(5),
        });
        st.apply(&FaultKind::ControllerRecover);
        assert!(!st.is_crashed(ServerId(5)));
        assert!(!st.controller_down());
        assert!(!st.any_active());
    }
}

//! Measurement utilities: exact-percentile samples, counters, time series.
//!
//! Every experiment in the paper reports percentiles (P50…P9999 tails are
//! the whole point of Figs. 2–4 and Tables 1/4), so [`Samples`] keeps exact
//! values and computes percentiles by sorting on demand. [`TimeSeries`]
//! bins a quantity over time for the timeline figures (Fig. 11's CPU
//! utilization curves, Fig. 14's loss-rate trace).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An exact sample set with percentile queries.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Samples {
    values: Vec<f64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Records a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0 for an empty set.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Largest observation, or 0 for an empty set. The fold seeds from
    /// the first element (not `0.0`) so an all-negative sample set
    /// reports its true maximum instead of a phantom zero.
    pub fn max(&self) -> f64 {
        let mut it = self.values.iter().copied();
        match it.next() {
            Some(first) => it.fold(first, f64::max),
            None => 0.0,
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// The `p`-th percentile (`p` in `[0, 100]`) by nearest-rank, or 0 for
    /// an empty set. `percentile(99.99)` is the paper's "P9999".
    pub fn percentile(&mut self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let n = self.values.len();
        let rank = ((p / 100.0) * n as f64).ceil() as usize;
        self.values[rank.clamp(1, n) - 1]
    }

    /// Convenience: `(mean, p50, p90, p99, p999, p9999)` — the tuple the
    /// paper's utilization and completion-time tables report.
    pub fn summary(&mut self) -> (f64, f64, f64, f64, f64, f64) {
        (
            self.mean(),
            self.percentile(50.0),
            self.percentile(90.0),
            self.percentile(99.0),
            self.percentile(99.9),
            self.percentile(99.99),
        )
    }

    /// Read-only view of the raw observations (unsorted order not
    /// guaranteed after percentile queries).
    pub fn raw(&self) -> &[f64] {
        &self.values
    }
}

/// A labelled monotonic counter set for loss/throughput accounting.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct Counter {
    /// Events that completed successfully (e.g. packets delivered).
    pub ok: u64,
    /// Events that were dropped or failed.
    pub dropped: u64,
}

impl Counter {
    /// Total events observed.
    pub fn total(&self) -> u64 {
        self.ok + self.dropped
    }

    /// Fraction of events dropped, or 0 when nothing was observed.
    pub fn loss_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.dropped as f64 / self.total() as f64
        }
    }
}

/// A quantity accumulated into fixed-width time bins.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeSeries {
    bin: SimDuration,
    bins: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series with the given bin width.
    pub fn new(bin: SimDuration) -> Self {
        assert!(bin.nanos() > 0);
        TimeSeries {
            bin,
            bins: Vec::new(),
        }
    }

    /// Adds `amount` to the bin covering `at`.
    pub fn add(&mut self, at: SimTime, amount: f64) {
        let idx = (at.nanos() / self.bin.nanos()) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// The bin width.
    pub fn bin_width(&self) -> SimDuration {
        self.bin
    }

    /// `(bin_start_time_secs, value)` pairs for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 * self.bin.as_secs_f64(), v))
            .collect()
    }

    /// Value of the bin covering `at` (0 when out of range).
    pub fn at(&self, at: SimTime) -> f64 {
        let idx = (at.nanos() / self.bin.nanos()) as usize;
        self.bins.get(idx).copied().unwrap_or(0.0)
    }

    /// Divides each bin by `other`'s matching bin, yielding rates
    /// (e.g. drops / total = loss rate per bin). Missing bins produce 0.
    pub fn ratio(&self, other: &TimeSeries) -> Vec<(f64, f64)> {
        assert_eq!(self.bin, other.bin, "bin widths must match");
        let n = self.bins.len().max(other.bins.len());
        (0..n)
            .map(|i| {
                let num = self.bins.get(i).copied().unwrap_or(0.0);
                let den = other.bins.get(i).copied().unwrap_or(0.0);
                let r = if den == 0.0 { 0.0 } else { num / den };
                (i as f64 * self.bin.as_secs_f64(), r)
            })
            .collect()
    }
}

/// Builds a CDF `(value, cumulative_fraction)` from raw observations — the
/// presentation format of the paper's Fig. 4.
pub fn cdf(samples: &Samples) -> Vec<(f64, f64)> {
    let mut v = samples.raw().to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_nearest_rank() {
        let mut s = Samples::new();
        for i in 1..=100 {
            s.record(i as f64);
        }
        assert_eq!(s.percentile(50.0), 50.0);
        assert_eq!(s.percentile(90.0), 90.0);
        assert_eq!(s.percentile(99.0), 99.0);
        assert_eq!(s.percentile(100.0), 100.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_samples_are_zero() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(99.0), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn mean_max_and_summary() {
        let mut s = Samples::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            s.record(v);
        }
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.max(), 10.0);
        let (mean, p50, _, _, _, p9999) = s.summary();
        assert_eq!(mean, 4.0);
        assert_eq!(p50, 2.0);
        assert_eq!(p9999, 10.0);
    }

    #[test]
    fn max_of_all_negative_samples_is_not_zero() {
        // Regression: max() used to fold from 0.0, so a strictly
        // negative sample set (e.g. clock-skew deltas) reported max 0.
        let mut s = Samples::new();
        for v in [-5.0, -2.5, -9.0] {
            s.record(v);
        }
        assert_eq!(s.max(), -2.5);
        let mut single = Samples::new();
        single.record(-1.0);
        assert_eq!(single.max(), -1.0);
    }

    #[test]
    fn record_duration_stores_seconds() {
        let mut s = Samples::new();
        s.record_duration(SimDuration::from_millis(1500));
        assert!((s.raw()[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn counter_loss_rate() {
        let c = Counter {
            ok: 90,
            dropped: 10,
        };
        assert_eq!(c.total(), 100);
        assert!((c.loss_rate() - 0.1).abs() < 1e-12);
        assert_eq!(Counter::default().loss_rate(), 0.0);
    }

    #[test]
    fn time_series_binning() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.add(SimTime(0), 1.0);
        ts.add(SimTime(999_999_999), 2.0);
        ts.add(SimTime(1_000_000_000), 5.0);
        assert_eq!(ts.at(SimTime(500_000_000)), 3.0);
        assert_eq!(ts.at(SimTime(1_500_000_000)), 5.0);
        assert_eq!(ts.at(SimTime(99_000_000_000)), 0.0);
        let pts = ts.points();
        assert_eq!(pts, vec![(0.0, 3.0), (1.0, 5.0)]);
        assert_eq!(ts.bin_width(), SimDuration::from_secs(1));
    }

    #[test]
    fn time_series_ratio() {
        let mut drops = TimeSeries::new(SimDuration::from_secs(1));
        let mut total = TimeSeries::new(SimDuration::from_secs(1));
        drops.add(SimTime(0), 1.0);
        total.add(SimTime(0), 10.0);
        total.add(SimTime(1_000_000_000), 4.0);
        let r = drops.ratio(&total);
        assert_eq!(r, vec![(0.0, 0.1), (1.0, 0.0)]);
    }

    #[test]
    fn cdf_shape() {
        let mut s = Samples::new();
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        let c = cdf(&s);
        assert_eq!(c[0], (1.0, 1.0 / 3.0));
        assert_eq!(c[2], (3.0, 1.0));
    }
}

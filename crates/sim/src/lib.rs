//! # nezha-sim
//!
//! A deterministic discrete-event simulator substrate for the Nezha
//! reproduction. The paper's testbed is hundreds of servers with in-house
//! CPU+FPGA SmartNICs; this crate replaces that hardware with explicit,
//! calibrated models:
//!
//! * [`time`] — nanosecond simulated clock ([`SimTime`], [`SimDuration`]);
//! * [`engine`] — a generic event queue with stable FIFO tie-breaking, so
//!   every run with the same seed replays identically;
//! * [`rng`] — seeded RNG plus the heavy-tailed samplers (exponential,
//!   log-normal, bounded Pareto) the workload models need;
//! * [`resources`] — the SmartNIC resource models: a fluid multi-core
//!   [`CpuServer`] with bounded backlog (overload ⇒ queueing ⇒ drops, which
//!   is exactly the mechanism behind the paper's Fig. 12 latency explosion)
//!   and a byte-accounted [`MemoryPool`];
//! * [`topology`] — a three-tier (ToR / aggregation / core) datacenter
//!   fabric giving deterministic hop counts and propagation+serialization
//!   latency between servers;
//! * [`stats`] — exact-percentile sample sets, counters, and time series
//!   used by every experiment harness;
//! * [`metrics`] — the unified telemetry registry: named, labeled
//!   counters/gauges/histograms/series behind cheap pre-registered handles,
//!   snapshotting to deterministic JSON;
//! * [`trace`] — a bounded, filterable ring buffer of structured per-packet
//!   events (enqueue, CPU charge, table hit/miss, NSH encap/decap, notify,
//!   drop-with-reason) on the simulated clock;
//! * [`fault`] — deterministic fault injection: a scripted [`FaultPlan`]
//!   of crashes, gray-slow members, (bursty) link loss, partitions,
//!   controller outages, and notify drops, replayed on the simulated
//!   clock from a seeded RNG stream;
//! * [`obs`] — the live observability plane: fixed-memory mergeable
//!   [`LogHistogram`]s with a documented quantile error bound, windowed
//!   rollups with ring-bounded retention, a declarative SLO watchdog
//!   emitting deterministic events, and Prometheus/JSONL exporters;
//! * [`shard`] — the sharded-execution substrate: contiguous balanced
//!   id partitions ([`ShardSpec`]) and the keyed barrier merge
//!   ([`merge_effects`]) whose output order is a pure function of
//!   (shard id, sorted effect keys);
//! * [`profile`] — cycle-attribution profiler and causal span tracer:
//!   pre-registered stage handles, spans that link across the BE↔FE hop,
//!   and deterministic flamegraph / Chrome `trace_event` exporters.
//!
//! The engine is intentionally *generic over the event type*: higher layers
//! (`nezha-core`, the experiment harnesses) define their own event enums and
//! drive the loop, keeping all domain logic out of the substrate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dense;
pub mod engine;
pub mod fault;
pub mod metrics;
pub mod obs;
pub mod profile;
pub mod report;
pub mod resources;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod topology;
pub mod trace;

pub use dense::{DenseMap, Slab};
pub use engine::{Engine, Scheduled};
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultState, GilbertElliott};
pub use metrics::{
    CounterHandle, GaugeHandle, HistogramHandle, LogHistogramHandle, MetricValue, MetricsDiff,
    MetricsRegistry, MetricsSnapshot, SeriesHandle,
};
pub use obs::{
    HistSummary, LogHistogram, RegistryWindows, SloEdge, SloEvent, SloRule, SloWatchdog,
    WindowRecord, WindowValue, WindowedRollup,
};
pub use profile::{Profiler, Span, SpanId, SpanRecord, StageHandle, StageSet, StageTotals};
pub use report::{BenchReport, Sample, BENCH_SCHEMA_VERSION};
pub use resources::{CpuOutcome, CpuServer, MemoryPool, UtilizationWindow};
pub use rng::{derive_seed, derive_seed_indexed, SimRng};
pub use shard::{merge_effects, ShardSpec};
pub use stats::{Counter, Samples, TimeSeries};
pub use time::{SimDuration, SimTime};
pub use topology::{Topology, TopologyConfig};
pub use trace::{DropReason, PacketTrace, TraceEvent, TraceEventKind, TraceFilter};

//! The unified telemetry registry: named, labeled metrics with cheap
//! pre-registered handles.
//!
//! Every measurement in the simulator flows through a [`MetricsRegistry`]:
//! the cluster data plane, each vSwitch, the controller/monitor loops and
//! the experiment harness all write to (and read from) the same registry,
//! so a figure script, a regression test and the control plane observe the
//! *same* numbers instead of parallel ad-hoc counter soups.
//!
//! Design rules:
//!
//! - **Hot-path cheap.** Components register their metrics once, up front,
//!   and keep [`CounterHandle`]-style indices (plain `Copy` newtypes over a
//!   slot index). A hot-path increment is a `RefCell` borrow plus a vector
//!   index — no hashing, no string formatting.
//! - **Deterministic.** Metrics are keyed by `name{label=value,...}` with
//!   labels sorted, snapshots iterate in `BTreeMap` order, and nothing
//!   reads wall time: two same-seed simulations serialize byte-identical
//!   snapshots (see `tests/determinism.rs`).
//! - **Shared, single-threaded.** The registry is an `Rc<RefCell<..>>`
//!   clone-to-share handle, matching the simulator's single-threaded
//!   event loop; cloning is cheap and all clones observe the same store.
//!
//! Naming scheme (documented in `DESIGN.md`): dotted component paths
//! (`conn.completed`, `ctrl.offload_events`, `vswitch.forwarded`), with
//! instance dimensions expressed as labels (`server`, `vnic`, `direction`,
//! `architecture`) rather than baked into names.

use crate::obs::LogHistogram;
use crate::stats::{Samples, TimeSeries};
use crate::time::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Handle to a registered monotonic counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to a registered gauge (a settable `f64`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeHandle(usize);

/// Handle to a registered histogram (backed by [`Samples`], so its
/// percentiles are identical to `Samples::percentile` on the same data).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramHandle(usize);

/// Handle to a registered time series (backed by [`TimeSeries`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesHandle(usize);

/// Handle to a registered log-bucketed histogram (backed by
/// [`LogHistogram`]: fixed memory, bounded relative error, mergeable —
/// the streaming complement to the exact [`Samples`] histogram).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LogHistogramHandle(usize);

#[derive(Clone, Debug)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Samples),
    Series(TimeSeries),
    LogHist(LogHistogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Series(_) => "series",
            Metric::LogHist(_) => "loghist",
        }
    }
}

/// A borrow of one metric's current value, as seen by the windowed
/// rollup driver (`obs::RegistryWindows`). Series are not windowed.
pub(crate) enum WindowView<'a> {
    Counter(u64),
    Gauge(f64),
    /// The exact histogram's raw sample vector; the rollup diffs by
    /// length, so it relies on the registry never sorting in place
    /// (reads always go through clones).
    SampleTail(&'a [f64]),
    LogHist(&'a LogHistogram),
}

#[derive(Debug, Default)]
struct Inner {
    slots: Vec<Metric>,
    keys: Vec<String>,
    index: BTreeMap<String, usize>,
}

impl Inner {
    fn register(&mut self, key: String, make: impl FnOnce() -> Metric) -> usize {
        if let Some(&slot) = self.index.get(&key) {
            let existing = self.slots[slot].kind();
            let wanted = make().kind();
            assert_eq!(
                existing, wanted,
                "metric '{key}' already registered as a {existing}, not a {wanted}"
            );
            return slot;
        }
        let slot = self.slots.len();
        self.slots.push(make());
        self.keys.push(key.clone());
        self.index.insert(key, slot);
        slot
    }
}

/// Builds the canonical `name{label=value,...}` key. Labels are sorted by
/// label name so registration order never changes identity.
fn metric_key(name: &str, labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<&(&str, String)> = labels.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    let mut key = String::with_capacity(name.len() + 16);
    key.push_str(name);
    key.push('{');
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let _ = write!(key, "{k}={v}");
    }
    key.push('}');
    key
}

/// The central metric store. Clones share the same underlying registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<Inner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// True when both handles refer to the same underlying store.
    pub fn same_store(&self, other: &MetricsRegistry) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }

    /// Registers (or looks up) a counter. Idempotent for an identical
    /// name+labels; panics if the key exists with a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, String)]) -> CounterHandle {
        CounterHandle(
            self.inner
                .borrow_mut()
                .register(metric_key(name, labels), || Metric::Counter(0)),
        )
    }

    /// Registers (or looks up) a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, String)]) -> GaugeHandle {
        GaugeHandle(
            self.inner
                .borrow_mut()
                .register(metric_key(name, labels), || Metric::Gauge(0.0)),
        )
    }

    /// Registers (or looks up) a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, String)]) -> HistogramHandle {
        HistogramHandle(
            self.inner
                .borrow_mut()
                .register(metric_key(name, labels), || {
                    Metric::Histogram(Samples::new())
                }),
        )
    }

    /// Registers (or looks up) a time series with the given bin width.
    pub fn series(&self, name: &str, labels: &[(&str, String)], bin: SimDuration) -> SeriesHandle {
        SeriesHandle(
            self.inner
                .borrow_mut()
                .register(metric_key(name, labels), || {
                    Metric::Series(TimeSeries::new(bin))
                }),
        )
    }

    /// Registers (or looks up) a log-bucketed histogram — bounded
    /// memory and mergeable, with quantile error documented at
    /// [`crate::obs::REL_ERROR_BOUND`]; use [`MetricsRegistry::histogram`]
    /// when exact percentiles matter more than bounded memory.
    pub fn log_histogram(&self, name: &str, labels: &[(&str, String)]) -> LogHistogramHandle {
        LogHistogramHandle(
            self.inner
                .borrow_mut()
                .register(metric_key(name, labels), || {
                    Metric::LogHist(LogHistogram::new())
                }),
        )
    }

    /// Increments a counter by 1.
    pub fn inc(&self, h: CounterHandle) {
        self.add(h, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&self, h: CounterHandle, n: u64) {
        match &mut self.inner.borrow_mut().slots[h.0] {
            Metric::Counter(v) => *v += n,
            m => unreachable!("counter handle pointing at a {}", m.kind()),
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, h: CounterHandle) -> u64 {
        match &self.inner.borrow().slots[h.0] {
            Metric::Counter(v) => *v,
            m => unreachable!("counter handle pointing at a {}", m.kind()),
        }
    }

    /// Sets a gauge.
    pub fn set(&self, h: GaugeHandle, v: f64) {
        match &mut self.inner.borrow_mut().slots[h.0] {
            Metric::Gauge(g) => *g = v,
            m => unreachable!("gauge handle pointing at a {}", m.kind()),
        }
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, h: GaugeHandle) -> f64 {
        match &self.inner.borrow().slots[h.0] {
            Metric::Gauge(g) => *g,
            m => unreachable!("gauge handle pointing at a {}", m.kind()),
        }
    }

    /// Records one histogram observation.
    pub fn observe(&self, h: HistogramHandle, v: f64) {
        match &mut self.inner.borrow_mut().slots[h.0] {
            Metric::Histogram(s) => s.record(v),
            m => unreachable!("histogram handle pointing at a {}", m.kind()),
        }
    }

    /// Records a duration observation in seconds.
    pub fn observe_duration(&self, h: HistogramHandle, d: SimDuration) {
        self.observe(h, d.as_secs_f64());
    }

    /// A clone of a histogram's sample set.
    pub fn histogram_samples(&self, h: HistogramHandle) -> Samples {
        match &self.inner.borrow().slots[h.0] {
            Metric::Histogram(s) => s.clone(),
            m => unreachable!("histogram handle pointing at a {}", m.kind()),
        }
    }

    /// Records one log-histogram observation. Allocation-free: a
    /// `RefCell` borrow, an index, and a bucket increment.
    pub fn observe_log(&self, h: LogHistogramHandle, v: f64) {
        match &mut self.inner.borrow_mut().slots[h.0] {
            Metric::LogHist(lh) => lh.record(v),
            m => unreachable!("loghist handle pointing at a {}", m.kind()),
        }
    }

    /// Records a duration observation in seconds.
    pub fn observe_log_duration(&self, h: LogHistogramHandle, d: SimDuration) {
        self.observe_log(h, d.as_secs_f64());
    }

    /// A clone of a log histogram's current state.
    pub fn log_histogram_value(&self, h: LogHistogramHandle) -> LogHistogram {
        match &self.inner.borrow().slots[h.0] {
            Metric::LogHist(lh) => lh.clone(),
            m => unreachable!("loghist handle pointing at a {}", m.kind()),
        }
    }

    /// Adds `amount` to the series bin covering `at`.
    pub fn series_add(&self, h: SeriesHandle, at: SimTime, amount: f64) {
        match &mut self.inner.borrow_mut().slots[h.0] {
            Metric::Series(s) => s.add(at, amount),
            m => unreachable!("series handle pointing at a {}", m.kind()),
        }
    }

    /// A clone of a series' binned data.
    pub fn series_data(&self, h: SeriesHandle) -> TimeSeries {
        match &self.inner.borrow().slots[h.0] {
            Metric::Series(s) => s.clone(),
            m => unreachable!("series handle pointing at a {}", m.kind()),
        }
    }

    /// A deterministic point-in-time copy of every metric, keyed by
    /// canonical name; the only sanctioned way to *read* telemetry in bulk.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.borrow();
        let entries = inner
            .index
            .iter()
            .map(|(key, &slot)| {
                let value = match &inner.slots[slot] {
                    Metric::Counter(v) => MetricValue::Counter(*v),
                    Metric::Gauge(g) => MetricValue::Gauge(*g),
                    Metric::Histogram(s) => MetricValue::Histogram(s.clone()),
                    Metric::Series(s) => MetricValue::Series(s.clone()),
                    Metric::LogHist(h) => MetricValue::LogHist(h.clone()),
                };
                (key.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Visits every windowable metric in sorted key order without
    /// cloning — the windowed-rollup driver's read path. Series are
    /// cumulative-binned already and are skipped.
    pub(crate) fn for_each_window(&self, mut f: impl FnMut(&str, WindowView<'_>)) {
        let inner = self.inner.borrow();
        for (key, &slot) in inner.index.iter() {
            match &inner.slots[slot] {
                Metric::Counter(v) => f(key, WindowView::Counter(*v)),
                Metric::Gauge(g) => f(key, WindowView::Gauge(*g)),
                Metric::Histogram(s) => f(key, WindowView::SampleTail(s.raw())),
                Metric::LogHist(h) => f(key, WindowView::LogHist(h)),
                Metric::Series(_) => {}
            }
        }
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Full sample set (exact percentiles).
    Histogram(Samples),
    /// Binned series.
    Series(TimeSeries),
    /// Log-bucketed histogram (bounded memory, bounded-error quantiles).
    LogHist(LogHistogram),
}

/// An immutable, deterministic copy of a registry's contents.
///
/// Keys are canonical `name{label=value,...}` strings; iteration and JSON
/// serialization follow sorted key order, so equal registries produce
/// byte-identical output.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Looks a metric up by canonical key.
    pub fn get(&self, key: &str) -> Option<&MetricValue> {
        self.entries.get(key)
    }

    /// Iterates `(key, value)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn expect(&self, key: &str, kind: &str) -> &MetricValue {
        self.get(key).unwrap_or_else(|| {
            panic!(
                "no {kind} '{key}' in snapshot; known keys: {:?}",
                self.entries.keys().collect::<Vec<_>>()
            )
        })
    }

    /// Value of the counter at `key`. Panics (listing known keys) when the
    /// key is absent or not a counter — experiments should fail loudly.
    pub fn counter(&self, key: &str) -> u64 {
        match self.expect(key, "counter") {
            MetricValue::Counter(v) => *v,
            m => panic!("metric '{key}' is not a counter: {m:?}"),
        }
    }

    /// Value of the gauge at `key`.
    pub fn gauge(&self, key: &str) -> f64 {
        match self.expect(key, "gauge") {
            MetricValue::Gauge(v) => *v,
            m => panic!("metric '{key}' is not a gauge: {m:?}"),
        }
    }

    /// The histogram at `key` (cloned so percentile queries can sort).
    pub fn histogram(&self, key: &str) -> Samples {
        match self.expect(key, "histogram") {
            MetricValue::Histogram(s) => s.clone(),
            m => panic!("metric '{key}' is not a histogram: {m:?}"),
        }
    }

    /// The series at `key`.
    pub fn series(&self, key: &str) -> &TimeSeries {
        match self.expect(key, "series") {
            MetricValue::Series(s) => s,
            m => panic!("metric '{key}' is not a series: {m:?}"),
        }
    }

    /// The log histogram at `key`.
    pub fn log_histogram(&self, key: &str) -> &LogHistogram {
        match self.expect(key, "loghist") {
            MetricValue::LogHist(h) => h,
            m => panic!("metric '{key}' is not a loghist: {m:?}"),
        }
    }

    /// Serializes the snapshot as deterministic JSON: keys sorted, floats
    /// in shortest-round-trip form, histograms as percentile summaries,
    /// series as `[bin_start_secs, value]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"metrics\": {");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: ", json_str(key));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{{\"type\": \"counter\", \"value\": {v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = write!(out, "{{\"type\": \"gauge\", \"value\": {}}}", json_f64(*v));
                }
                MetricValue::Histogram(s) => {
                    let mut s = s.clone();
                    let _ = write!(out, "{{\"type\": \"histogram\", \"count\": {}", s.len());
                    if !s.is_empty() {
                        let (mean, p50, p90, p99, p999, p9999) = s.summary();
                        let _ = write!(
                            out,
                            ", \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \
                             \"p999\": {}, \"p9999\": {}, \"max\": {}",
                            json_f64(mean),
                            json_f64(p50),
                            json_f64(p90),
                            json_f64(p99),
                            json_f64(p999),
                            json_f64(p9999),
                            json_f64(s.max())
                        );
                    }
                    out.push('}');
                }
                MetricValue::LogHist(h) => {
                    let _ = write!(out, "{{\"type\": \"loghist\", \"count\": {}", h.count());
                    if !h.is_empty() {
                        let s = h.summary();
                        let _ = write!(
                            out,
                            ", \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \
                             \"max\": {}",
                            json_f64(s.p50),
                            json_f64(s.p90),
                            json_f64(s.p99),
                            json_f64(s.p999),
                            json_f64(s.max)
                        );
                    }
                    out.push('}');
                }
                MetricValue::Series(s) => {
                    let _ = write!(
                        out,
                        "{{\"type\": \"series\", \"bin_ns\": {}, \"points\": [",
                        s.bin_width().nanos()
                    );
                    for (j, (t, v)) in s.points().into_iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "[{}, {}]", json_f64(t), json_f64(v));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// The change from `baseline` to `self`: counter deltas and gauge
    /// moves, keyed by canonical metric name. Counters absent from the
    /// baseline diff against zero; only changed entries are kept, so a
    /// fault-window diff reads as "what this window did" without any
    /// hand-rolled before/after subtraction at the call site. Histograms
    /// and series (cumulative sample sets) are not diffed.
    pub fn diff(&self, baseline: &MetricsSnapshot) -> MetricsDiff {
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        for (key, value) in &self.entries {
            match value {
                MetricValue::Counter(now) => {
                    let before = match baseline.get(key) {
                        Some(MetricValue::Counter(v)) => *v,
                        _ => 0,
                    };
                    let delta = now.saturating_sub(before);
                    if delta != 0 {
                        counters.insert(key.clone(), delta);
                    }
                }
                MetricValue::Gauge(now) => {
                    let before = match baseline.get(key) {
                        Some(MetricValue::Gauge(v)) => *v,
                        _ => 0.0,
                    };
                    if before != *now {
                        gauges.insert(key.clone(), (before, *now));
                    }
                }
                MetricValue::Histogram(_) | MetricValue::Series(_) | MetricValue::LogHist(_) => {}
            }
        }
        MetricsDiff { counters, gauges }
    }
}

/// What changed between two [`MetricsSnapshot`]s (see
/// [`MetricsSnapshot::diff`]).
#[derive(Clone, Debug, Default)]
pub struct MetricsDiff {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, (f64, f64)>,
}

impl MetricsDiff {
    /// How much the counter at `key` grew (0 when unchanged or absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// The gauge move `(before, after)` at `key`, when it changed.
    pub fn gauge_change(&self, key: &str) -> Option<(f64, f64)> {
        self.gauges.get(key).copied()
    }

    /// Iterates changed counters `(key, delta)` in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates changed gauges `(key, (before, after))` in sorted order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, (f64, f64))> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

/// JSON string literal with the escapes the key charset can need.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Deterministic shortest-round-trip float formatting; JSON has no
/// infinities or NaN, so those clamp to null.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v:?}");
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_label_order_independent() {
        let a = metric_key("x", &[("server", "1".into()), ("vnic", "2".into())]);
        let b = metric_key("x", &[("vnic", "2".into()), ("server", "1".into())]);
        assert_eq!(a, b);
        assert_eq!(a, "x{server=1,vnic=2}");
        assert_eq!(metric_key("plain", &[]), "plain");
    }

    #[test]
    fn registration_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("conn.completed", &[]);
        let b = reg.counter("conn.completed", &[]);
        assert_eq!(a, b);
        reg.inc(a);
        reg.inc(b);
        assert_eq!(reg.counter_value(a), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflicts_panic() {
        let reg = MetricsRegistry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn clones_share_the_store() {
        let reg = MetricsRegistry::new();
        let other = reg.clone();
        assert!(reg.same_store(&other));
        let h = other.counter("shared", &[]);
        other.add(h, 7);
        assert_eq!(reg.snapshot().counter("shared"), 7);
    }

    #[test]
    fn histogram_percentiles_match_samples() {
        // The registry histogram must be *exactly* Samples under the hood:
        // same data, same nearest-rank percentiles.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[]);
        let mut reference = Samples::new();
        let mut x = 1.0;
        for _ in 0..500 {
            x = (x * 1.3) % 97.0;
            reg.observe(h, x);
            reference.record(x);
        }
        let mut got = reg.histogram_samples(h);
        for p in [0.0, 50.0, 90.0, 99.0, 99.9, 99.99, 100.0] {
            assert_eq!(got.percentile(p), reference.percentile(p));
        }
        assert_eq!(got.raw(), reference.raw());
    }

    #[test]
    fn log_histogram_registers_and_snapshots() {
        let reg = MetricsRegistry::new();
        let h = reg.log_histogram("lat.stream", &[]);
        for v in [0.5, 1.0, 2.0, 4.0] {
            reg.observe_log(h, v);
        }
        reg.observe_log_duration(h, SimDuration::from_millis(1500));
        let lh = reg.log_histogram_value(h);
        assert_eq!(lh.count(), 5);
        let snap = reg.snapshot();
        assert_eq!(snap.log_histogram("lat.stream").count(), 5);
        let json = snap.to_json();
        assert!(json.contains("\"type\": \"loghist\", \"count\": 5"));
        // Idempotent re-registration, kind conflicts still panic.
        assert_eq!(reg.log_histogram("lat.stream", &[]), h);
    }

    #[test]
    fn series_round_trips() {
        let reg = MetricsRegistry::new();
        let h = reg.series("cps", &[], SimDuration::from_millis(50));
        reg.series_add(h, SimTime(0), 1.0);
        reg.series_add(h, SimTime(60_000_000), 2.0);
        let snap = reg.snapshot();
        assert_eq!(snap.series("cps").points(), vec![(0.0, 1.0), (0.05, 2.0)]);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let build = || {
            let reg = MetricsRegistry::new();
            reg.add(reg.counter("b.count", &[]), 3);
            reg.set(reg.gauge("a.util", &[("server", "4".into())]), 0.25);
            let h = reg.histogram("lat", &[]);
            reg.observe(h, 1.5);
            reg.observe(h, 2.5);
            let s = reg.series("cps", &[], SimDuration::from_millis(50));
            reg.series_add(s, SimTime(0), 2.0);
            reg.snapshot().to_json()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "same construction must be byte-identical");
        // Sorted keys: a.util before b.count before cps before lat.
        let pos = |needle: &str| a.find(needle).unwrap_or_else(|| panic!("{needle} missing"));
        assert!(pos("a.util{server=4}") < pos("b.count"));
        assert!(pos("b.count") < pos("\"cps\""));
        assert!(pos("\"cps\"") < pos("\"lat\""));
        assert!(a.contains("\"type\": \"histogram\""));
        assert!(a.contains("\"bin_ns\": 50000000"));
    }

    #[test]
    fn empty_histogram_serializes_count_only() {
        let reg = MetricsRegistry::new();
        reg.histogram("empty", &[]);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"count\": 0}"));
        assert!(!json.contains("\"mean\""));
    }

    #[test]
    fn diff_reports_counter_deltas_and_gauge_moves() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pkt.total", &[]);
        let g = reg.gauge("util", &[]);
        let steady = reg.counter("steady", &[]);
        reg.add(c, 10);
        reg.inc(steady);
        reg.set(g, 0.5);
        let before = reg.snapshot();
        reg.add(c, 32);
        reg.set(g, 0.75);
        let late = reg.counter("late.arrival", &[]);
        reg.inc(late);
        let diff = reg.snapshot().diff(&before);
        assert_eq!(diff.counter("pkt.total"), 32);
        assert_eq!(diff.counter("steady"), 0, "unchanged counters are absent");
        assert_eq!(diff.counter("late.arrival"), 1, "new counters diff vs 0");
        assert_eq!(diff.gauge_change("util"), Some((0.5, 0.75)));
        assert_eq!(diff.counters().count(), 2);
        assert!(!diff.is_empty());
        let none = reg.snapshot().diff(&reg.snapshot());
        assert!(none.is_empty());
    }
}

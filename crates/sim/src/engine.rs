//! The discrete-event engine: a time-ordered queue of user-defined events.
//!
//! Determinism contract: two events scheduled for the same instant are
//! delivered in the order they were *scheduled* (stable FIFO tie-break via
//! a monotone sequence number). Combined with the seeded [`crate::SimRng`],
//! a run is a pure function of its inputs — a property every experiment
//! harness and regression test in this repository relies on.

use crate::metrics::{CounterHandle, MetricsRegistry};
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// An event with its due time and stable tie-break sequence.
#[derive(Clone, Debug)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    seq: u64,
    /// The user event payload.
    pub event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event engine: a clock plus a priority queue of [`Scheduled`] events.
///
/// The engine does not interpret events; callers drive the loop:
///
/// ```
/// use nezha_sim::{Engine, SimDuration, SimTime};
///
/// #[derive(Debug)]
/// enum Ev { Ping, Pong }
///
/// let mut eng = Engine::new();
/// eng.schedule_in(SimDuration::from_millis(1), Ev::Ping);
/// while let Some(s) = eng.pop() {
///     match s.event {
///         Ev::Ping if s.at < SimTime(10_000_000) => {
///             eng.schedule_in(SimDuration::from_millis(1), Ev::Pong);
///         }
///         _ => {}
///     }
/// }
/// assert!(eng.now() >= SimTime(2_000_000));
/// ```
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<E>>,
    processed: u64,
    telemetry: Option<EngineTelemetry>,
}

/// Pre-registered handles the engine updates when metrics are attached.
#[derive(Clone, Debug)]
struct EngineTelemetry {
    registry: MetricsRegistry,
    scheduled: CounterHandle,
    processed: CounterHandle,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an empty queue.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            processed: 0,
            telemetry: None,
        }
    }

    /// Attaches a [`MetricsRegistry`]: from now on the engine keeps the
    /// `engine.scheduled` / `engine.processed` counters up to date there.
    /// Optional — an unattached engine pays no telemetry cost.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let tel = EngineTelemetry {
            registry: registry.clone(),
            scheduled: registry.counter("engine.scheduled", &[]),
            processed: registry.counter("engine.processed", &[]),
        };
        tel.registry.add(tel.scheduled, self.seq);
        tel.registry.add(tel.processed, self.processed);
        self.telemetry = Some(tel);
    }

    /// The current simulated time (the due time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`. Times before `now` are
    /// clamped to `now` — the simulator never travels backwards.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        if let Some(tel) = &self.telemetry {
            tel.registry.inc(tel.scheduled);
        }
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        let s = self.queue.pop()?;
        debug_assert!(s.at >= self.now, "event queue went backwards");
        self.now = s.at;
        self.processed += 1;
        if let Some(tel) = &self.telemetry {
            tel.registry.inc(tel.processed);
        }
        Some(s)
    }

    /// Pops the next event only if it is due at or before `deadline`.
    ///
    /// Used by harnesses that interleave simulation with periodic sampling:
    /// the clock advances to `deadline` when the queue has nothing earlier.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<Scheduled<E>> {
        match self.queue.peek() {
            Some(s) if s.at <= deadline => self.pop(),
            _ => {
                self.now = self.now.max(deadline);
                None
            }
        }
    }

    /// Due time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|s| s.at)
    }

    /// Drops all pending events (used when tearing down a scenario).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

impl<E> fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(30), "c");
        eng.schedule_at(SimTime(10), "a");
        eng.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| eng.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(eng.now(), SimTime(30));
        assert_eq!(eng.processed(), 3);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut eng = Engine::new();
        for i in 0..100 {
            eng.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| eng.pop()).map(|s| s.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(100), ());
        eng.pop();
        eng.schedule_at(SimTime(50), ()); // in the past
        let s = eng.pop().unwrap();
        assert_eq!(s.at, SimTime(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(1000), "first");
        eng.pop();
        eng.schedule_in(SimDuration::from_nanos(5), "second");
        assert_eq!(eng.pop().unwrap().at, SimTime(1005));
    }

    #[test]
    fn pop_until_respects_deadline_and_advances_clock() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(10), "early");
        eng.schedule_at(SimTime(100), "late");
        assert_eq!(eng.pop_until(SimTime(50)).unwrap().event, "early");
        assert!(eng.pop_until(SimTime(50)).is_none());
        // Clock advanced to the deadline even though nothing popped.
        assert_eq!(eng.now(), SimTime(50));
        assert_eq!(eng.pop().unwrap().event, "late");
    }

    #[test]
    fn clear_empties_queue() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(1), ());
        eng.schedule_at(SimTime(2), ());
        assert_eq!(eng.pending(), 2);
        eng.clear();
        assert_eq!(eng.pending(), 0);
        assert!(eng.pop().is_none());
    }

    #[test]
    fn peek_time_reports_next_due() {
        let mut eng = Engine::new();
        assert_eq!(eng.peek_time(), None);
        eng.schedule_at(SimTime(42), ());
        assert_eq!(eng.peek_time(), Some(SimTime(42)));
    }

    #[test]
    fn attached_metrics_track_scheduled_and_processed() {
        let reg = MetricsRegistry::new();
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(1), ()); // before attach: seeded into the counter
        eng.attach_metrics(&reg);
        eng.schedule_at(SimTime(2), ());
        eng.pop();
        eng.pop();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("engine.scheduled"), 2);
        assert_eq!(snap.counter("engine.processed"), 2);
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two identical runs must produce identical event orders.
        let run = || {
            let mut eng = Engine::new();
            let mut order = Vec::new();
            eng.schedule_at(SimTime(1), 0u32);
            while let Some(s) = eng.pop() {
                order.push((s.at, s.event));
                if s.event < 20 {
                    eng.schedule_in(SimDuration::from_nanos(s.event as u64 % 3), s.event + 1);
                    eng.schedule_in(SimDuration::from_nanos(s.event as u64 % 3), s.event + 2);
                }
                if order.len() > 2000 {
                    break;
                }
            }
            order
        };
        assert_eq!(run(), run());
    }
}

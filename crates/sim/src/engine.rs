//! The discrete-event engine: a time-ordered queue of user-defined events.
//!
//! Determinism contract: two events scheduled for the same instant are
//! delivered in the order they were *scheduled* (stable FIFO tie-break via
//! a monotone sequence number). Combined with the seeded [`crate::SimRng`],
//! a run is a pure function of its inputs — a property every experiment
//! harness and regression test in this repository relies on.

use crate::dense::Slab;
use crate::metrics::{CounterHandle, MetricsRegistry};
use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::fmt;

/// An event with its due time and stable tie-break sequence.
#[derive(Clone, Debug)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub at: SimTime,
    /// The user event payload.
    pub event: E,
}

/// The queue entry: 24 bytes of `(at, seq, slab id)`. The event payload
/// itself parks in the engine's slab, so every sort swap and run shift
/// moves three words instead of a whole event.
#[derive(Clone, Copy, Debug)]
struct HeapKey {
    at: SimTime,
    seq: u64,
    id: u32,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapKey {}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted so that an ascending sort puts the earliest time (then
        // lowest sequence number) last, where `Vec::pop` is O(1).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The event engine: a clock plus a priority queue of [`Scheduled`] events.
///
/// The engine does not interpret events; callers drive the loop:
///
/// ```
/// use nezha_sim::{Engine, SimDuration, SimTime};
///
/// #[derive(Debug)]
/// enum Ev { Ping, Pong }
///
/// let mut eng = Engine::new();
/// eng.schedule_in(SimDuration::from_millis(1), Ev::Ping);
/// while let Some(s) = eng.pop() {
///     match s.event {
///         Ev::Ping if s.at < SimTime(10_000_000) => {
///             eng.schedule_in(SimDuration::from_millis(1), Ev::Pong);
///         }
///         _ => {}
///     }
/// }
/// assert!(eng.now() >= SimTime(2_000_000));
/// ```
pub struct Engine<E> {
    now: SimTime,
    seq: u64,
    /// Every pending key with `at < horizon`, sorted descending by
    /// `(at, seq)` so the earliest key sits at the back: a pop is
    /// `Vec::pop`, and a whole bucket is ordered by one cache-friendly
    /// unstable sort at promotion time instead of per-key heap sifts.
    /// Sub-bucket-latency keys scheduled after the promotion are merged
    /// in by binary-search insertion — the run only ever spans one 20 µs
    /// bucket (tens of keys), so the shift is a short L1 `memmove`,
    /// cheaper and branch-friendlier than a heap sift.
    run: Vec<HeapKey>,
    /// The far-future bucket ladder: `buckets[i]` holds keys due in
    /// `[(bucket_base + i) * bucket_ns, (bucket_base + i + 1) * bucket_ns)`,
    /// unordered. A far event costs one O(1) bucket push at schedule time
    /// and its share of one bulk sort when its whole bucket promotes —
    /// never a per-key sift.
    buckets: std::collections::VecDeque<Vec<HeapKey>>,
    /// Absolute bucket index of `buckets[0]`. The run/ladder boundary
    /// (`horizon`) is `bucket_base * bucket_ns`.
    bucket_base: u64,
    /// Width of one far-future bucket in nanoseconds ([`BUCKET_NS`] by
    /// default). The ladder holds one bucket per width-worth of pending
    /// horizon, so the width must match the timeline's granularity: 20 µs
    /// for the packet datapath, epoch-scale for coarse region timelines
    /// (via [`Engine::with_bucket_width`]) — a 20 µs ladder spanning a
    /// simulated day would need ~4 billion buckets.
    bucket_ns: u64,
    /// Total keys across `buckets`.
    staged_len: usize,
    /// Events scheduled *at* the instant most recently drained by
    /// [`Engine::pop_batch_until`]. The batch pop removed every queued
    /// entry at that instant, and any later same-instant schedule gets a
    /// strictly larger sequence number, so FIFO order here *is* `(at,
    /// seq)` order — these events skip the run and the parked slab
    /// entirely. Completion-style events (fire "now") are a quarter of a
    /// packet workload, so this path matters.
    immediate: std::collections::VecDeque<E>,
    /// The instant whose batch was most recently drained; the only due
    /// time `immediate` events can have.
    draining_at: Option<SimTime>,
    /// Retired bucket allocations, reused for new buckets so steady-state
    /// scheduling never touches the allocator (capacity is invisible to
    /// behavior; only contents are).
    spare: Vec<Vec<HeapKey>>,
    /// Pending event payloads, addressed by the heap keys' slab ids.
    parked: Slab<E>,
    processed: u64,
    telemetry: Option<EngineTelemetry>,
}

/// Default width of one far-future bucket: 20 µs of simulated time — a
/// hair above the fabric's common-case one-way latency, so most packet
/// arrivals land one or two buckets out (an O(1) push) instead of in the
/// sorted run. The clock can never pass the horizon without draining the
/// run (only pops advance it), so the run holds at most one promoted
/// bucket plus the in-flight events scheduled since: tens of keys,
/// L1-resident.
const BUCKET_NS: u64 = 20_000;

/// Pre-registered handles the engine updates when metrics are attached.
#[derive(Clone, Debug)]
struct EngineTelemetry {
    registry: MetricsRegistry,
    scheduled: CounterHandle,
    processed: CounterHandle,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with an empty queue and the default
    /// 20 µs bucket width (tuned for the packet datapath).
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            run: Vec::new(),
            buckets: std::collections::VecDeque::new(),
            bucket_base: 0,
            bucket_ns: BUCKET_NS,
            staged_len: 0,
            immediate: std::collections::VecDeque::new(),
            draining_at: None,
            spare: Vec::new(),
            parked: Slab::new(),
            processed: 0,
            telemetry: None,
        }
    }

    /// Creates an engine whose far-future ladder uses `width`-wide buckets
    /// instead of the default 20 µs.
    ///
    /// The ladder's memory is one bucket per `width` of pending horizon,
    /// so coarse timelines (the region simulator schedules churn and
    /// fault events across whole simulated days at epoch granularity)
    /// must use an epoch-scale width. Delivery semantics are identical
    /// for every width — only promotion batching changes.
    pub fn with_bucket_width(width: SimDuration) -> Self {
        let mut eng = Engine::new();
        assert!(width.nanos() > 0, "bucket width must be positive");
        eng.bucket_ns = width.nanos();
        eng
    }

    /// Attaches a [`MetricsRegistry`]: from now on the engine keeps the
    /// `engine.scheduled` / `engine.processed` counters up to date there.
    /// Optional — an unattached engine pays no telemetry cost.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry) {
        let tel = EngineTelemetry {
            registry: registry.clone(),
            scheduled: registry.counter("engine.scheduled", &[]),
            processed: registry.counter("engine.processed", &[]),
        };
        tel.registry.add(tel.scheduled, self.seq);
        tel.registry.add(tel.processed, self.processed);
        self.telemetry = Some(tel);
    }

    /// The current simulated time (the due time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.run.len() + self.staged_len + self.immediate.len()
    }

    /// The run/ladder boundary: keys due strictly before this live in
    /// `run`.
    #[inline]
    fn horizon_ns(&self) -> u64 {
        self.bucket_base.saturating_mul(self.bucket_ns)
    }

    /// Ensures the global earliest pending event (if any) is resident in
    /// the run by promoting the next nonempty bucket when the run has
    /// gone dry. The clock only advances by popping, so `now` can never
    /// pass the horizon — a nonempty run always owns the global minimum
    /// and promotion is exactly one bucket at a time: one unstable sort,
    /// then every pop is O(1).
    fn refill(&mut self) {
        if !self.run.is_empty() {
            return;
        }
        while let Some(front) = self.buckets.front_mut() {
            if front.is_empty() {
                self.buckets.pop_front();
                self.bucket_base += 1;
                continue;
            }
            let mut keys = std::mem::take(front);
            self.buckets.pop_front();
            self.bucket_base += 1;
            self.staged_len -= keys.len();
            // `HeapKey`'s Ord is inverted (max-heap order), so an
            // ascending sort under it is descending `(at, seq)` — the
            // earliest key ends up at the back, where `Vec::pop` is O(1).
            keys.sort_unstable();
            let retired = std::mem::replace(&mut self.run, keys);
            if retired.capacity() > 0 && self.spare.len() < 32 {
                self.spare.push(retired);
            }
            return;
        }
    }

    /// Schedules `event` at absolute time `at`. Times before `now` are
    /// clamped to `now` — the simulator never travels backwards.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        if let Some(tel) = &self.telemetry {
            tel.registry.inc(tel.scheduled);
        }
        if self.draining_at == Some(at) {
            // `at == now` and the batch pop already emptied the heap of
            // this instant, so FIFO order is exactly `(at, seq)` order.
            self.immediate.push_back(event);
            return;
        }
        let id = self.parked.insert(event);
        let key = HeapKey { at, seq, id };
        if at.0 < self.horizon_ns() {
            // Below the horizon: merge into the (descending-sorted) run.
            // `seq` is unique, so the search always misses and yields the
            // insertion point that keeps `(at, seq)` order.
            let pos = self.run.binary_search(&key).unwrap_err();
            self.run.insert(pos, key);
        } else {
            let idx = (at.0 / self.bucket_ns - self.bucket_base) as usize;
            if idx >= self.buckets.len() {
                let spare = &mut self.spare;
                self.buckets
                    .resize_with(idx + 1, || spare.pop().unwrap_or_default());
            }
            self.buckets[idx].push(key);
            self.staged_len += 1;
        }
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its due time.
    ///
    /// Tracks the instant being drained in `draining_at` so that
    /// [`Engine::schedule_at`] can route same-instant schedules to the
    /// O(1) `immediate` lane. Delivery order at one instant is still
    /// exactly `(at, seq)`: run entries at the draining instant all
    /// pre-date anything in `immediate` (a key can only enter the run
    /// *before* its instant starts draining — later same-instant
    /// schedules are diverted to `immediate` with larger `seq`), so the
    /// run goes first and `immediate` follows in FIFO (= `seq`) order.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        if let Some(&k) = self.run.last() {
            if self.draining_at == Some(k.at) {
                self.run.pop();
                self.processed += 1;
                if let Some(tel) = &self.telemetry {
                    tel.registry.inc(tel.processed);
                }
                return Some(Scheduled {
                    at: k.at,
                    event: self.parked.take(k.id),
                });
            }
        }
        if let Some(event) = self.immediate.pop_front() {
            let at = self.draining_at.expect("immediate implies draining_at");
            self.processed += 1;
            if let Some(tel) = &self.telemetry {
                tel.registry.inc(tel.processed);
            }
            return Some(Scheduled { at, event });
        }
        self.refill();
        let k = self.run.pop()?;
        debug_assert!(k.at >= self.now, "event queue went backwards");
        self.now = k.at;
        self.draining_at = Some(k.at);
        self.processed += 1;
        if let Some(tel) = &self.telemetry {
            tel.registry.inc(tel.processed);
        }
        Some(Scheduled {
            at: k.at,
            event: self.parked.take(k.id),
        })
    }

    /// Pops the next event only if it is due at or before `deadline`.
    ///
    /// Used by harnesses that interleave simulation with periodic sampling:
    /// the clock advances to `deadline` when the queue has nothing earlier.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<Scheduled<E>> {
        self.refill();
        // Earliest pending instant: `immediate` (when present) lives at
        // `draining_at == now`, which no run key can precede.
        let due = if !self.immediate.is_empty() {
            self.draining_at.expect("immediate implies draining_at")
        } else if let Some(k) = self.run.last() {
            k.at
        } else {
            self.now = self.now.max(deadline);
            return None;
        };
        if due <= deadline {
            self.pop()
        } else {
            self.now = self.now.max(deadline);
            None
        }
    }

    /// Pops *every* event due at the earliest pending instant `<= deadline`
    /// into `batch` (cleared first), advancing the clock to that instant.
    /// Advances the clock to `deadline` and leaves `batch` empty when
    /// nothing is due.
    ///
    /// Delivery order is unchanged from popping one at a time: the batch
    /// is the same-timestamp prefix of the queue in sequence order, and
    /// any event a batch member schedules — even at the very same instant
    /// — receives a strictly larger sequence number, so it sorts after
    /// every batch member and fires on a later call. Callers amortize one
    /// peek per *batch* instead of one per event.
    pub fn pop_batch_until(&mut self, deadline: SimTime, batch: &mut Vec<Scheduled<E>>) {
        batch.clear();
        self.refill();
        let due = if !self.immediate.is_empty() {
            self.draining_at.expect("immediate implies draining_at")
        } else if let Some(k) = self.run.last() {
            k.at
        } else {
            self.now = self.now.max(deadline);
            return;
        };
        if due > deadline {
            self.now = self.now.max(deadline);
            return;
        }
        // Run entries at `due` pre-date (= smaller `seq` than) anything
        // in `immediate` — see `pop` — so they drain first.
        while let Some(&k) = self.run.last() {
            if k.at != due {
                break;
            }
            self.run.pop();
            batch.push(Scheduled {
                at: k.at,
                event: self.parked.take(k.id),
            });
        }
        batch.extend(
            self.immediate
                .drain(..)
                .map(|event| Scheduled { at: due, event }),
        );
        self.now = due;
        self.draining_at = Some(due);
        let n = batch.len() as u64;
        self.processed += n;
        if let Some(tel) = &self.telemetry {
            tel.registry.add(tel.processed, n);
        }
    }

    /// Due time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        if !self.immediate.is_empty() {
            return self.draining_at;
        }
        if let Some(k) = self.run.last() {
            return Some(k.at);
        }
        self.buckets
            .iter()
            .find(|b| !b.is_empty())
            .map(|b| b.iter().map(|k| k.at).min().expect("nonempty"))
    }

    /// Drops all pending events (used when tearing down a scenario).
    pub fn clear(&mut self) {
        self.run.clear();
        self.buckets.clear();
        self.staged_len = 0;
        self.immediate.clear();
        self.draining_at = None;
        self.parked = Slab::new();
    }
}

impl<E> fmt::Debug for Engine<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("now", &self.now)
            .field("pending", &self.pending())
            .field("processed", &self.processed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(30), "c");
        eng.schedule_at(SimTime(10), "a");
        eng.schedule_at(SimTime(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| eng.pop()).map(|s| s.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(eng.now(), SimTime(30));
        assert_eq!(eng.processed(), 3);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut eng = Engine::new();
        for i in 0..100 {
            eng.schedule_at(SimTime(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| eng.pop()).map(|s| s.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(100), ());
        eng.pop();
        eng.schedule_at(SimTime(50), ()); // in the past
        let s = eng.pop().unwrap();
        assert_eq!(s.at, SimTime(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(1000), "first");
        eng.pop();
        eng.schedule_in(SimDuration::from_nanos(5), "second");
        assert_eq!(eng.pop().unwrap().at, SimTime(1005));
    }

    #[test]
    fn pop_until_respects_deadline_and_advances_clock() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(10), "early");
        eng.schedule_at(SimTime(100), "late");
        assert_eq!(eng.pop_until(SimTime(50)).unwrap().event, "early");
        assert!(eng.pop_until(SimTime(50)).is_none());
        // Clock advanced to the deadline even though nothing popped.
        assert_eq!(eng.now(), SimTime(50));
        assert_eq!(eng.pop().unwrap().event, "late");
    }

    #[test]
    fn clear_empties_queue() {
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(1), ());
        eng.schedule_at(SimTime(2), ());
        assert_eq!(eng.pending(), 2);
        eng.clear();
        assert_eq!(eng.pending(), 0);
        assert!(eng.pop().is_none());
    }

    #[test]
    fn peek_time_reports_next_due() {
        let mut eng = Engine::new();
        assert_eq!(eng.peek_time(), None);
        eng.schedule_at(SimTime(42), ());
        assert_eq!(eng.peek_time(), Some(SimTime(42)));
    }

    #[test]
    fn attached_metrics_track_scheduled_and_processed() {
        let reg = MetricsRegistry::new();
        let mut eng = Engine::new();
        eng.schedule_at(SimTime(1), ()); // before attach: seeded into the counter
        eng.attach_metrics(&reg);
        eng.schedule_at(SimTime(2), ());
        eng.pop();
        eng.pop();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("engine.scheduled"), 2);
        assert_eq!(snap.counter("engine.processed"), 2);
    }

    #[test]
    fn wide_buckets_deliver_identically_and_stay_small() {
        // Delivery order is width-independent: the same µs-scale schedule
        // (small enough for the default 20 µs ladder to walk) drains
        // identically through a wide-bucket engine.
        let times: Vec<u64> = (0..50)
            .map(|i| (i * 7 % 50) * 25_000 + (i % 3) * 17)
            .collect();
        let drain = |mut eng: Engine<usize>| -> Vec<(SimTime, usize)> {
            for (ev, &t) in times.iter().enumerate() {
                eng.schedule_at(SimTime(t), ev);
            }
            std::iter::from_fn(|| eng.pop())
                .map(|s| (s.at, s.event))
                .collect()
        };
        let wide = drain(Engine::with_bucket_width(SimDuration::from_millis(1)));
        let narrow = drain(Engine::new());
        assert_eq!(wide, narrow);

        // Hour-scale schedule: epoch-wide buckets keep the ladder at ~50
        // entries where the 20 µs default would need ~9 billion. Delivery
        // is still strict (at, seq) order across the whole span.
        let epoch = SimDuration::from_secs(3600);
        let mut eng: Engine<usize> = Engine::with_bucket_width(epoch);
        let hours: Vec<u64> = (0..50)
            .map(|i| (i * 7 % 50) * epoch.nanos() + (i % 3) * 17)
            .collect();
        for (ev, &t) in hours.iter().enumerate() {
            eng.schedule_at(SimTime(t), ev);
        }
        assert!(eng.buckets.len() <= 50, "buckets={}", eng.buckets.len());
        let drained: Vec<(SimTime, usize)> = std::iter::from_fn(|| eng.pop())
            .map(|s| (s.at, s.event))
            .collect();
        assert_eq!(drained.len(), hours.len());
        let mut expected: Vec<(SimTime, usize)> = hours
            .iter()
            .enumerate()
            .map(|(ev, &t)| (SimTime(t), ev))
            .collect();
        expected.sort();
        assert_eq!(drained, expected);
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two identical runs must produce identical event orders.
        let run = || {
            let mut eng = Engine::new();
            let mut order = Vec::new();
            eng.schedule_at(SimTime(1), 0u32);
            while let Some(s) = eng.pop() {
                order.push((s.at, s.event));
                if s.event < 20 {
                    eng.schedule_in(SimDuration::from_nanos(s.event as u64 % 3), s.event + 1);
                    eng.schedule_in(SimDuration::from_nanos(s.event as u64 % 3), s.event + 2);
                }
                if order.len() > 2000 {
                    break;
                }
            }
            order
        };
        assert_eq!(run(), run());
    }
}

//! SmartNIC resource models: CPU, memory, and rate limiting.
//!
//! These models are the load-bearing substitution for real hardware (see
//! DESIGN.md §2). The paper's bottlenecks are:
//!
//! * **CPU on the slow path** — rule-table lookups burn cycles, limiting
//!   CPS ([`CpuServer`]);
//! * **memory on the fast/slow path** — session tables and rule tables burn
//!   bytes, limiting #concurrent flows and #vNICs ([`MemoryPool`]).
//!
//! [`CpuServer`] is a *fluid* multi-core server: work is a number of cycles,
//! the server drains at `cores × hz` cycles per second, and a bounded
//! backlog turns sustained overload into queueing delay and, past the
//! bound, packet drops. This one mechanism produces the paper's Fig. 2
//! (vSwitch CPU saturation), Fig. 11 (utilization timelines), and Fig. 12
//! (latency explosion beyond ~90% load) without any per-experiment tuning.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Outcome of offering work to a [`CpuServer`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpuOutcome {
    /// Work accepted; processing completes at `done_at` (includes queueing).
    Done {
        /// Completion time, `>= now`.
        done_at: SimTime,
    },
    /// The backlog bound was exceeded; the work (packet) is dropped.
    Dropped,
}

impl CpuOutcome {
    /// Completion time, if the work was accepted.
    pub fn done_at(self) -> Option<SimTime> {
        match self {
            CpuOutcome::Done { done_at } => Some(done_at),
            CpuOutcome::Dropped => None,
        }
    }

    /// True when the work was dropped.
    pub fn is_dropped(self) -> bool {
        matches!(self, CpuOutcome::Dropped)
    }
}

/// A fluid multi-core CPU with bounded backlog and utilization tracking.
#[derive(Debug, Clone)]
pub struct CpuServer {
    capacity_hz: f64,
    backlog_done: SimTime,
    max_backlog: SimDuration,
    window: UtilizationWindow,
    accepted: u64,
    dropped: u64,
}

impl CpuServer {
    /// Creates a server with `cores` cores at `hz` cycles/second each and
    /// the given backlog bound (the deepest queue, expressed as time to
    /// drain, before new work is dropped).
    pub fn new(cores: u32, hz: u64, max_backlog: SimDuration) -> Self {
        assert!(cores > 0 && hz > 0);
        CpuServer {
            capacity_hz: cores as f64 * hz as f64,
            backlog_done: SimTime::ZERO,
            max_backlog,
            window: UtilizationWindow::new(SimDuration::from_millis(1000)),
            accepted: 0,
            dropped: 0,
        }
    }

    /// Total capacity in cycles per second.
    pub fn capacity_hz(&self) -> f64 {
        self.capacity_hz
    }

    /// Offers `cycles` of work at time `now`.
    pub fn offer(&mut self, now: SimTime, cycles: u64) -> CpuOutcome {
        let queue_delay = self.backlog_done.since(now);
        if queue_delay > self.max_backlog {
            self.dropped += 1;
            return CpuOutcome::Dropped;
        }
        let service = SimDuration::from_secs_f64(cycles as f64 / self.capacity_hz);
        let done_at = self.backlog_done.max(now) + service;
        self.backlog_done = done_at;
        self.accepted += 1;
        self.window.add(now, cycles as f64);
        CpuOutcome::Done { done_at }
    }

    /// Current queueing delay a new job would experience.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.backlog_done.since(now)
    }

    /// Offered-load utilization over the trailing measurement window,
    /// in `[0, 1]`. Can be sampled at any time; this is what the vSwitch
    /// reports to the controller every reporting period.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let cap = self.capacity_hz * self.window.len().as_secs_f64();
        (self.window.sum(now) / cap).min(1.0)
    }

    /// Replaces the utilization measurement window length.
    pub fn set_window(&mut self, len: SimDuration) {
        self.window = UtilizationWindow::new(len);
    }

    /// (accepted, dropped) job counters since construction.
    pub fn counters(&self) -> (u64, u64) {
        (self.accepted, self.dropped)
    }
}

/// A rolling-window accumulator: `sum(now)` returns the total quantity
/// added during the trailing window. Implemented as rotating fixed bins —
/// O(1) add, O(bins) read, no allocation after construction.
#[derive(Debug, Clone)]
pub struct UtilizationWindow {
    bins: Vec<f64>,
    bin_len: SimDuration,
    /// Index of the bin covering `cursor_start ..= cursor_start+bin_len`.
    cursor: usize,
    cursor_start: SimTime,
}

const WINDOW_BINS: usize = 10;

impl UtilizationWindow {
    /// Creates a window of the given total length.
    pub fn new(len: SimDuration) -> Self {
        assert!(len.nanos() >= WINDOW_BINS as u64);
        UtilizationWindow {
            bins: vec![0.0; WINDOW_BINS],
            bin_len: SimDuration(len.nanos() / WINDOW_BINS as u64),
            cursor: 0,
            cursor_start: SimTime::ZERO,
        }
    }

    /// Total window length.
    pub fn len(&self) -> SimDuration {
        SimDuration(self.bin_len.nanos() * WINDOW_BINS as u64)
    }

    /// Always false; windows have fixed nonzero length. Provided to satisfy
    /// the `len`/`is_empty` API convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    fn rotate_to(&mut self, now: SimTime) {
        // Advance the cursor bin until it covers `now`, zeroing stale bins.
        let mut steps = 0;
        while now >= self.cursor_start + self.bin_len {
            self.cursor = (self.cursor + 1) % WINDOW_BINS;
            self.bins[self.cursor] = 0.0;
            self.cursor_start += self.bin_len;
            steps += 1;
            if steps > WINDOW_BINS {
                // Larger jump than the whole window: reset directly.
                let skip = now.since(self.cursor_start).nanos() / self.bin_len.nanos();
                self.cursor_start =
                    SimTime(self.cursor_start.nanos() + skip * self.bin_len.nanos());
                for b in &mut self.bins {
                    *b = 0.0;
                }
            }
        }
    }

    /// Adds `amount` at time `now` (monotone `now` expected).
    pub fn add(&mut self, now: SimTime, amount: f64) {
        self.rotate_to(now);
        self.bins[self.cursor] += amount;
    }

    /// Sum over the trailing window as of `now`.
    pub fn sum(&self, now: SimTime) -> f64 {
        // Bins older than the window have been zeroed by rotation; a read
        // long after the last add must not see stale data, so compute how
        // many bins are still in range.
        let age_bins = now.since(self.cursor_start).nanos() / self.bin_len.nanos().max(1);
        if age_bins as usize >= WINDOW_BINS {
            return 0.0;
        }
        let live = WINDOW_BINS - age_bins as usize;
        (0..live)
            .map(|k| self.bins[(self.cursor + WINDOW_BINS - k) % WINDOW_BINS])
            .sum()
    }
}

/// Error returned when a [`MemoryPool`] allocation does not fit.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OutOfMemory {
    /// Bytes requested.
    pub requested: u64,
    /// Bytes still free.
    pub free: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of memory: requested {} bytes, {} free",
            self.requested, self.free
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A byte-accounted memory pool with a hard capacity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryPool {
    capacity: u64,
    used: u64,
    peak: u64,
}

impl MemoryPool {
    /// Creates a pool of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            capacity,
            used: 0,
            peak: 0,
        }
    }

    /// Attempts to reserve `bytes`.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        let free = self.capacity - self.used;
        if bytes > free {
            return Err(OutOfMemory {
                requested: bytes,
                free,
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Releases `bytes`. Releasing more than is allocated is a logic error
    /// and panics in debug builds; release clamps in release builds.
    pub fn free(&mut self, bytes: u64) {
        debug_assert!(
            bytes <= self.used,
            "freeing {} of {} used",
            bytes,
            self.used
        );
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes still free.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// High-water mark since construction.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Fraction of capacity in use, `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        self.used as f64 / self.capacity as f64
    }
}

/// A token bucket used by the QoS meter table.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// Creates a bucket admitting `rate_per_sec` units steadily with a
    /// burst allowance, starting full.
    pub fn new(rate_per_sec: f64, burst: f64) -> Self {
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last: SimTime::ZERO,
        }
    }

    /// Attempts to consume `amount` at time `now`; false = over rate.
    pub fn admit(&mut self, now: SimTime, amount: f64) -> bool {
        let dt = now.since(self.last).as_secs_f64();
        self.last = self.last.max(now);
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        if self.tokens >= amount {
            self.tokens -= amount;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn srv() -> CpuServer {
        // 1 core at 1 GHz, 1 ms max backlog.
        CpuServer::new(1, 1_000_000_000, SimDuration::from_millis(1))
    }

    #[test]
    fn idle_server_completes_after_service_time() {
        let mut s = srv();
        match s.offer(SimTime(0), 1000) {
            CpuOutcome::Done { done_at } => assert_eq!(done_at, SimTime(1000)),
            CpuOutcome::Dropped => panic!("dropped"),
        }
    }

    #[test]
    fn backlog_accumulates_fifo() {
        let mut s = srv();
        let d1 = s.offer(SimTime(0), 1000).done_at().unwrap();
        let d2 = s.offer(SimTime(0), 1000).done_at().unwrap();
        assert_eq!(d1, SimTime(1000));
        assert_eq!(d2, SimTime(2000));
        assert_eq!(s.queue_delay(SimTime(0)), SimDuration(2000));
    }

    #[test]
    fn overload_drops_past_backlog_bound() {
        let mut s = srv();
        // Fill slightly past 1 ms of backlog: 1100 jobs of 1 us each.
        let mut dropped = 0;
        for _ in 0..1100 {
            if s.offer(SimTime(0), 1000).is_dropped() {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "no drops under 1.1ms of instantaneous backlog");
        let (acc, drop) = s.counters();
        assert_eq!(acc + drop, 1100);
        // Work offered later, after the backlog drains, is accepted again.
        assert!(!s.offer(SimTime(3_000_000), 1000).is_dropped());
    }

    #[test]
    fn backlog_drains_with_time() {
        let mut s = srv();
        s.offer(SimTime(0), 500_000); // 0.5 ms of work
        assert_eq!(s.queue_delay(SimTime(0)), SimDuration(500_000));
        assert_eq!(s.queue_delay(SimTime(250_000)), SimDuration(250_000));
        assert_eq!(s.queue_delay(SimTime(600_000)), SimDuration::ZERO);
    }

    #[test]
    fn utilization_tracks_offered_load() {
        let mut s = srv();
        s.set_window(SimDuration::from_millis(100));
        // Offer 50% load for 100 ms: 1 job of 5000 cycles every 10 us.
        let mut t = SimTime(0);
        for _ in 0..10_000 {
            s.offer(t, 5_000);
            t += SimDuration::from_micros(10);
        }
        let u = s.utilization(t);
        assert!((u - 0.5).abs() < 0.1, "utilization {u}");
    }

    #[test]
    fn utilization_decays_when_idle() {
        let mut s = srv();
        s.set_window(SimDuration::from_millis(100));
        s.offer(SimTime(0), 50_000_000); // 50 ms of work
        assert!(s.utilization(SimTime(1_000_000)) > 0.4);
        // Long after, the window has rotated past all of it.
        assert_eq!(s.utilization(SimTime(1_000_000_000)), 0.0);
    }

    #[test]
    fn window_handles_large_time_jumps() {
        let mut w = UtilizationWindow::new(SimDuration::from_millis(10));
        w.add(SimTime(0), 100.0);
        // Jump far beyond the window.
        w.add(SimTime(10_000_000_000), 5.0);
        assert_eq!(w.sum(SimTime(10_000_000_000)), 5.0);
        assert!(!w.is_empty());
        assert_eq!(w.len(), SimDuration::from_millis(10));
    }

    #[test]
    fn memory_pool_accounting() {
        let mut m = MemoryPool::new(1000);
        m.alloc(400).unwrap();
        m.alloc(600).unwrap();
        assert_eq!(m.used(), 1000);
        assert_eq!(m.available(), 0);
        let e = m.alloc(1).unwrap_err();
        assert_eq!(e.requested, 1);
        assert_eq!(e.free, 0);
        m.free(500);
        assert_eq!(m.used(), 500);
        assert_eq!(m.peak(), 1000);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
        assert!(e.to_string().contains("out of memory"));
    }

    #[test]
    fn token_bucket_enforces_rate() {
        let mut tb = TokenBucket::new(100.0, 10.0);
        // Burst of 10 admitted immediately.
        assert!((0..10).all(|_| tb.admit(SimTime(0), 1.0)));
        assert!(!tb.admit(SimTime(0), 1.0));
        // After 50 ms, 5 tokens refilled.
        assert!((0..5).all(|_| tb.admit(SimTime(50_000_000), 1.0)));
        assert!(!tb.admit(SimTime(50_000_000), 1.0));
    }
}

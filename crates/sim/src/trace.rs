//! Structured per-packet tracing: a bounded, filterable ring buffer of
//! simulation events.
//!
//! Where [`crate::metrics`] aggregates, [`PacketTrace`] narrates: each
//! [`TraceEvent`] records *what happened to one packet* (enqueue, CPU
//! charge, table hit/miss, NSH encap/decap, notify, drop-with-reason) at a
//! deterministic [`SimTime`]. Because the buffer is bounded it is safe to
//! leave enabled in long runs — old events fall off the front — and because
//! it records only simulated time, two same-seed runs produce identical
//! event sequences (asserted by `tests/determinism.rs`).
//!
//! Recording is off unless a capacity is configured, and a [`TraceFilter`]
//! can narrow capture to one server/vNIC or to drops only, keeping the cost
//! near zero when a test cares about a single flow.

use crate::time::SimTime;
use nezha_types::{ServerId, VnicId};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Why a packet was dropped, as recorded in a [`TraceEventKind::Drop`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The vSwitch CPU backlog was full (overload).
    Backlog,
    /// A policy/security rule denied the packet.
    PolicyDeny,
    /// A QoS class token bucket was empty.
    RateLimited,
    /// No route/session matched and slow-path resolution failed.
    NoRoute,
    /// The packet arrived at a server that no longer owns its flow
    /// (stale gateway mapping past the carry window).
    Stale,
    /// The carrying FE or destination server had failed.
    PeerDown,
    /// Decode of the wire format failed.
    Malformed,
    /// Discarded by the fault engine (injected link loss, partition,
    /// or notify drop) — distinguishes chaos drops from organic ones.
    Fault,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::Backlog => "backlog",
            DropReason::PolicyDeny => "policy-deny",
            DropReason::RateLimited => "rate-limited",
            DropReason::NoRoute => "no-route",
            DropReason::Stale => "stale",
            DropReason::PeerDown => "peer-down",
            DropReason::Malformed => "malformed",
            DropReason::Fault => "fault",
        };
        f.write_str(s)
    }
}

/// The event taxonomy a trace records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Packet entered a vSwitch ingress queue.
    Enqueue,
    /// The vSwitch charged CPU cycles to process the packet.
    CpuCharge {
        /// Cycles consumed by the pipeline stage.
        cycles: u64,
    },
    /// Fast-path table lookup hit.
    TableHit,
    /// Fast-path table lookup missed (slow path taken).
    TableMiss,
    /// An NSH (Nezha service header) was pushed onto the packet.
    NshEncap,
    /// An NSH was stripped from the packet.
    NshDecap,
    /// An FE sent a Notify back to the BE (first packet of a session).
    Notify,
    /// The packet was dropped.
    Drop(DropReason),
}

/// One recorded event: where and when something happened to a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated time of the event.
    pub at: SimTime,
    /// Correlates the events of one packet across servers.
    pub trace_id: u64,
    /// Server (vSwitch) where the event occurred.
    pub server: ServerId,
    /// The vNIC the packet belongs to.
    pub vnic: VnicId,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Record-time filter: an event is kept only if it passes every set field.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceFilter {
    /// Keep only events on this server.
    pub server: Option<ServerId>,
    /// Keep only events for this vNIC.
    pub vnic: Option<VnicId>,
    /// Keep only `Drop` events.
    pub drops_only: bool,
}

impl TraceFilter {
    /// A filter that keeps everything.
    pub fn all() -> Self {
        TraceFilter::default()
    }

    /// Restricts to one server.
    pub fn on_server(mut self, server: ServerId) -> Self {
        self.server = Some(server);
        self
    }

    /// Restricts to one vNIC.
    pub fn on_vnic(mut self, vnic: VnicId) -> Self {
        self.vnic = Some(vnic);
        self
    }

    /// Restricts to drop events.
    pub fn drops(mut self) -> Self {
        self.drops_only = true;
        self
    }

    fn accepts(&self, ev: &TraceEvent) -> bool {
        if let Some(s) = self.server {
            if ev.server != s {
                return false;
            }
        }
        if let Some(v) = self.vnic {
            if ev.vnic != v {
                return false;
            }
        }
        if self.drops_only && !matches!(ev.kind, TraceEventKind::Drop(_)) {
            return false;
        }
        true
    }
}

#[derive(Debug)]
struct TraceInner {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    filter: TraceFilter,
    recorded: u64,
    evicted: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s. Clones share the same buffer;
/// with capacity 0 (the default) recording is a no-op.
#[derive(Clone, Debug)]
pub struct PacketTrace {
    inner: Rc<RefCell<TraceInner>>,
}

impl Default for PacketTrace {
    fn default() -> Self {
        PacketTrace::disabled()
    }
}

impl PacketTrace {
    /// A trace that records nothing (capacity 0).
    pub fn disabled() -> Self {
        PacketTrace::with_capacity(0)
    }

    /// A trace keeping at most `capacity` most-recent events.
    pub fn with_capacity(capacity: usize) -> Self {
        PacketTrace {
            inner: Rc::new(RefCell::new(TraceInner {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity,
                filter: TraceFilter::all(),
                recorded: 0,
                evicted: 0,
            })),
        }
    }

    /// Sets the record-time filter (applies to subsequent records only).
    pub fn set_filter(&self, filter: TraceFilter) {
        self.inner.borrow_mut().filter = filter;
    }

    /// Resizes the ring in place (all clones see the change). Shrinking
    /// evicts the oldest events; setting 0 disables recording.
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.borrow_mut();
        while inner.events.len() > capacity {
            inner.events.pop_front();
            inner.evicted += 1;
        }
        inner.capacity = capacity;
    }

    /// True when recording can have an effect (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().capacity > 0
    }

    /// Records one event, evicting the oldest when full. No-op when the
    /// trace is disabled or the filter rejects the event.
    pub fn record(&self, ev: TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        if inner.capacity == 0 || !inner.filter.accepts(&ev) {
            return;
        }
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.evicted += 1;
        }
        inner.events.push_back(ev);
        inner.recorded += 1;
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().events.is_empty()
    }

    /// Total events accepted since creation (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.borrow().recorded
    }

    /// Events pushed out of the ring because it was full.
    pub fn evicted(&self) -> u64 {
        self.inner.borrow().evicted
    }

    /// Copies out the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().copied().collect()
    }

    /// Copies out the buffered events passing `filter`, oldest first.
    pub fn query(&self, filter: TraceFilter) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|ev| filter.accepts(ev))
            .copied()
            .collect()
    }

    /// All events of one packet (by `trace_id`), oldest first.
    pub fn packet(&self, trace_id: u64) -> Vec<TraceEvent> {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|ev| ev.trace_id == trace_id)
            .copied()
            .collect()
    }

    /// Drops all buffered events (counters keep their totals).
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, id: u64, server: u32, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            at: SimTime(at),
            trace_id: id,
            server: ServerId(server),
            vnic: VnicId(1),
            kind,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = PacketTrace::disabled();
        assert!(!t.is_enabled());
        t.record(ev(1, 1, 1, TraceEventKind::Enqueue));
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = PacketTrace::with_capacity(3);
        for i in 0..5 {
            t.record(ev(i, i, 1, TraceEventKind::Enqueue));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.evicted(), 2);
        let times: Vec<u64> = t.events().iter().map(|e| e.at.nanos()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn record_filter_applies() {
        let t = PacketTrace::with_capacity(16);
        t.set_filter(TraceFilter::all().on_server(ServerId(2)).drops());
        t.record(ev(1, 1, 1, TraceEventKind::Drop(DropReason::Backlog)));
        t.record(ev(2, 2, 2, TraceEventKind::Enqueue));
        t.record(ev(3, 3, 2, TraceEventKind::Drop(DropReason::Stale)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].kind, TraceEventKind::Drop(DropReason::Stale));
    }

    #[test]
    fn query_and_packet_lookup() {
        let t = PacketTrace::with_capacity(16);
        t.record(ev(1, 7, 1, TraceEventKind::Enqueue));
        t.record(ev(2, 7, 1, TraceEventKind::TableMiss));
        t.record(ev(3, 8, 2, TraceEventKind::NshEncap));
        t.record(ev(4, 7, 2, TraceEventKind::Notify));
        assert_eq!(t.packet(7).len(), 3);
        assert_eq!(t.query(TraceFilter::all().on_server(ServerId(2))).len(), 2);
        assert_eq!(t.query(TraceFilter::all()).len(), 4);
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = PacketTrace::with_capacity(8);
        let other = t.clone();
        other.record(ev(1, 1, 1, TraceEventKind::TableHit));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn drop_reason_display() {
        assert_eq!(DropReason::PolicyDeny.to_string(), "policy-deny");
        assert_eq!(DropReason::Backlog.to_string(), "backlog");
        assert_eq!(DropReason::Fault.to_string(), "fault");
    }

    #[test]
    fn combined_filter_requires_every_field() {
        let t = PacketTrace::with_capacity(16);
        t.set_filter(
            TraceFilter::all()
                .on_server(ServerId(2))
                .on_vnic(VnicId(1))
                .drops(),
        );
        // Wrong server, wrong kind, wrong vnic — each fails one clause.
        t.record(ev(1, 1, 1, TraceEventKind::Drop(DropReason::Fault)));
        t.record(ev(2, 2, 2, TraceEventKind::Enqueue));
        let mut other_vnic = ev(3, 3, 2, TraceEventKind::Drop(DropReason::Fault));
        other_vnic.vnic = VnicId(9);
        t.record(other_vnic);
        // Passes all three.
        t.record(ev(4, 4, 2, TraceEventKind::Drop(DropReason::Backlog)));
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.events()[0].kind,
            TraceEventKind::Drop(DropReason::Backlog)
        );
        // query() applies the same conjunction over a buffered mix.
        let u = PacketTrace::with_capacity(16);
        u.record(ev(1, 1, 2, TraceEventKind::Drop(DropReason::Stale)));
        u.record(ev(2, 2, 2, TraceEventKind::TableHit));
        u.record(ev(3, 3, 3, TraceEventKind::Drop(DropReason::Stale)));
        let q = u.query(
            TraceFilter::all()
                .on_server(ServerId(2))
                .on_vnic(VnicId(1))
                .drops(),
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].at, SimTime(1));
    }

    #[test]
    fn ring_at_exactly_capacity_evicts_nothing() {
        let t = PacketTrace::with_capacity(4);
        for i in 0..4 {
            t.record(ev(i, i, 1, TraceEventKind::Enqueue));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.evicted(), 0);
        let times: Vec<u64> = t.events().iter().map(|e| e.at.nanos()).collect();
        assert_eq!(times, vec![0, 1, 2, 3], "insertion order preserved");
    }

    #[test]
    fn ring_at_capacity_plus_one_evicts_exactly_the_oldest() {
        let t = PacketTrace::with_capacity(4);
        for i in 0..5 {
            t.record(ev(i, i, 1, TraceEventKind::Enqueue));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.evicted(), 1);
        assert_eq!(t.recorded(), 5);
        let times: Vec<u64> = t.events().iter().map(|e| e.at.nanos()).collect();
        assert_eq!(times, vec![1, 2, 3, 4], "oldest event gone, order kept");
    }
}

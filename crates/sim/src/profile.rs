//! Cycle-attribution profiler and causal span tracer.
//!
//! Every headline claim in the paper is a cycle-budget claim: offload wins
//! because slow-path rule lookups and session handling dominate vSwitch
//! CPU. The aggregate counters in [`crate::metrics`] say *how many* cycles
//! were charged; this module says *where they went* — per pipeline stage,
//! per call stack, and per packet, across the BE↔FE hop.
//!
//! ## Span model
//!
//! A **span** is one closed interval of simulated work: a stage name, a
//! `[start, end]` pair of [`SimTime`]s, and the cycles/bytes/packets it
//! accounts for. Spans are recorded *after the fact* in a single call
//! ([`Profiler::record`]) because the deterministic CPU model knows a
//! charge's completion time synchronously — there is no open/close pair to
//! mismatch. Stage names are interned once at startup into cheap `Copy`
//! [`StageHandle`]s (same discipline as `MetricsRegistry`; lint rule D6
//! enforces it), so the per-packet cost when enabled is a `RefCell` borrow
//! plus vector pushes, and a single flag test when disabled.
//!
//! ## Causal parents
//!
//! Each recorded span gets a [`SpanId`]. A span may name a parent span;
//! the id packs the parent's interned *stack path* so linking never needs
//! a lookup table. Ids flatten to a nonzero `u64` ([`SpanId::to_raw`])
//! that components thread through packets crossing the fabric, which is
//! how one packet's life (BE enqueue → NSH encap → FE rule lookup →
//! notify return → session update) reconstructs as a single tree even
//! though its spans were recorded on different servers.
//!
//! ## Aggregation and export
//!
//! Recording feeds three sinks:
//! - per-stage self totals (the cycle-share table),
//! - per-stack-path totals (the collapsed-stack flamegraph,
//!   [`Profiler::flamegraph`]),
//! - a bounded ring of full span records (the Chrome `trace_event`
//!   export, [`Profiler::chrome_trace`], and tree queries).
//!
//! ## Determinism invariants
//!
//! All timestamps come from [`SimTime`]; the profiler holds no wall-clock,
//! no randomness, and iterates only `BTreeMap`s, so two same-seed runs
//! produce byte-identical exports. Recording never changes simulation
//! behaviour: the profiler is a pure observer and is disabled by default.

use crate::time::SimTime;
use nezha_types::{ServerId, VnicId};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// Number of `rule_tier{n}` stages pre-registered by [`StageSet`]. Covers
/// the base pipeline tier plus every `extra_tables` profile up to 7.
pub const RULE_TIERS: usize = 8;

/// Sentinel for "no parent path" in the intern table.
const NO_PATH: u32 = u32::MAX;

/// A pre-registered profiling stage. Cheap to copy and store; acquire
/// once at startup via [`Profiler::stage`] (lint rule D6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct StageHandle(usize);

/// Identity of one recorded span.
///
/// Packs the span's sequence number (low 40 bits) with its interned stack
/// path (high 24 bits), so a child span can be attributed to the right
/// flamegraph stack from the id alone — no side table that could grow
/// without bound.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct SpanId {
    seq: u64,
    path: u32,
}

impl SpanId {
    /// Flattens to a nonzero `u64` suitable for carrying in a packet
    /// field (`0` meaning "no span").
    pub fn to_raw(self) -> u64 {
        ((self.seq + 1) & 0xff_ffff_ffff) | ((self.path as u64) << 40)
    }

    /// Recovers a span id from [`SpanId::to_raw`]; `0` maps to `None`.
    pub fn from_raw(raw: u64) -> Option<SpanId> {
        if raw == 0 {
            None
        } else {
            Some(SpanId {
                seq: (raw & 0xff_ffff_ffff) - 1,
                path: (raw >> 40) as u32,
            })
        }
    }
}

/// Input to [`Profiler::record`]: one closed interval of attributed work.
#[derive(Clone, Copy, Debug)]
pub struct Span {
    /// Pre-registered stage this work belongs to.
    pub stage: StageHandle,
    /// Causal parent, if any (possibly recorded on another server).
    pub parent: Option<SpanId>,
    /// Trace id of the packet this work was done for (0 if none).
    pub trace: u64,
    /// Server the work ran on.
    pub server: ServerId,
    /// vNIC the work was charged to.
    pub vnic: VnicId,
    /// When the work began.
    pub start: SimTime,
    /// When the work completed.
    pub end: SimTime,
    /// Simulated cycles attributed to this span (self time, post any
    /// gray-failure multiplier — i.e. exactly what the CPU model charged).
    pub cycles: u64,
    /// Wire bytes attributed to this span.
    pub bytes: u64,
    /// Packets attributed to this span.
    pub packets: u64,
}

/// One recorded span, as stored in the ring and returned by queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// This span's identity.
    pub id: SpanId,
    /// Causal parent, if any.
    pub parent: Option<SpanId>,
    /// Stage (resolve the name with [`Profiler::stage_name`]).
    pub stage: StageHandle,
    /// Packet trace id (0 if none).
    pub trace: u64,
    /// Server the work ran on.
    pub server: ServerId,
    /// vNIC the work was charged to.
    pub vnic: VnicId,
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Self cycles.
    pub cycles: u64,
    /// Self bytes.
    pub bytes: u64,
    /// Self packets.
    pub packets: u64,
}

/// Accumulated self totals for one stage or one stack path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTotals {
    /// Simulated cycles.
    pub cycles: u64,
    /// Wire bytes.
    pub bytes: u64,
    /// Packets.
    pub packets: u64,
}

impl StageTotals {
    fn add(&mut self, s: &Span) {
        self.cycles += s.cycles;
        self.bytes += s.bytes;
        self.packets += s.packets;
    }
}

#[derive(Debug)]
struct PathNode {
    parent: u32,
    stage: usize,
}

#[derive(Debug, Default)]
struct Inner {
    enabled: bool,
    stages: Vec<String>,
    stage_index: BTreeMap<String, usize>,
    stage_agg: Vec<StageTotals>,
    paths: Vec<PathNode>,
    path_index: BTreeMap<(u32, usize), u32>,
    path_agg: Vec<StageTotals>,
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    recorded: u64,
    evicted: u64,
    next_seq: u64,
}

/// The shared profiler. `Clone` shares the same underlying store (the
/// same single-ownership model as `MetricsRegistry`): the cluster creates
/// one and hands clones to every component it instruments.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    inner: Rc<RefCell<Inner>>,
}

impl Profiler {
    /// Creates a disabled profiler with no registered stages.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Registers (or looks up) a stage by name, returning its handle.
    ///
    /// Idempotent; meant for startup only (lint rule D6 flags hot-path
    /// acquisition). Stage names become flamegraph frames, so they must
    /// not contain `;`, spaces, or newlines.
    pub fn stage(&self, name: &str) -> StageHandle {
        let mut inner = self.inner.borrow_mut();
        if let Some(&i) = inner.stage_index.get(name) {
            return StageHandle(i);
        }
        let i = inner.stages.len();
        inner.stages.push(name.to_string());
        inner.stage_index.insert(name.to_string(), i);
        inner.stage_agg.push(StageTotals::default());
        StageHandle(i)
    }

    /// The registered name of a stage handle.
    pub fn stage_name(&self, h: StageHandle) -> String {
        let inner = self.inner.borrow();
        inner.stages.get(h.0).cloned().unwrap_or_default()
    }

    /// Enables recording with a span-ring capacity. Aggregates (stage and
    /// flamegraph totals) are unbounded but tiny; only the full span
    /// records are ring-bounded. Capacity 0 keeps aggregation but drops
    /// span records (flamegraph works, Chrome trace is empty).
    pub fn enable(&self, span_capacity: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.enabled = true;
        inner.capacity = span_capacity;
        // Pre-size the ring so steady-state recording never grows the
        // allocation mid-measurement (a realloc pause inside the measured
        // region would skew the very spans being recorded). Huge
        // capacities (effectively "unbounded") are not paid for eagerly.
        const EAGER_PREALLOC_MAX: usize = 1 << 20;
        if span_capacity <= EAGER_PREALLOC_MAX {
            let additional = span_capacity.saturating_sub(inner.spans.len());
            inner.spans.reserve_exact(additional);
        }
    }

    /// Stops recording (registered stages and collected data remain).
    pub fn disable(&self) {
        self.inner.borrow_mut().enabled = false;
    }

    /// True when spans are being recorded. Instrumentation sites check
    /// this before doing any per-span work.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Discards all recorded data (stage registrations survive).
    pub fn clear(&self) {
        let mut inner = self.inner.borrow_mut();
        for a in &mut inner.stage_agg {
            *a = StageTotals::default();
        }
        inner.paths.clear();
        inner.path_index.clear();
        inner.path_agg.clear();
        inner.spans.clear();
        inner.recorded = 0;
        inner.evicted = 0;
        inner.next_seq = 0;
    }

    /// Records one span. Returns `None` when disabled (the only per-call
    /// cost on that path is the flag test), otherwise the new span's id.
    pub fn record(&self, span: Span) -> Option<SpanId> {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled {
            return None;
        }
        if span.stage.0 >= inner.stages.len() {
            return None; // handle from a different profiler; ignore
        }
        let parent_path = span.parent.map_or(NO_PATH, |p| p.path);
        let key = (parent_path, span.stage.0);
        let path = match inner.path_index.get(&key) {
            Some(&p) => p,
            None => {
                let p = inner.paths.len() as u32;
                inner.paths.push(PathNode {
                    parent: parent_path,
                    stage: span.stage.0,
                });
                inner.path_agg.push(StageTotals::default());
                inner.path_index.insert(key, p);
                p
            }
        };
        inner.path_agg[path as usize].add(&span);
        inner.stage_agg[span.stage.0].add(&span);
        let id = SpanId {
            seq: inner.next_seq,
            path,
        };
        inner.next_seq += 1;
        inner.recorded += 1;
        if inner.capacity > 0 {
            if inner.spans.len() == inner.capacity {
                inner.spans.pop_front();
                inner.evicted += 1;
            }
            inner.spans.push_back(SpanRecord {
                id,
                parent: span.parent,
                stage: span.stage,
                trace: span.trace,
                server: span.server,
                vnic: span.vnic,
                start: span.start,
                end: span.end,
                cycles: span.cycles,
                bytes: span.bytes,
                packets: span.packets,
            });
        }
        Some(id)
    }

    /// Total spans recorded since enable/clear.
    pub fn recorded(&self) -> u64 {
        self.inner.borrow().recorded
    }

    /// Span records evicted from the ring.
    pub fn evicted(&self) -> u64 {
        self.inner.borrow().evicted
    }

    /// Sum of self cycles across all stages — equals the CPU model's
    /// total charged cycles when every charge site is instrumented.
    pub fn total_cycles(&self) -> u64 {
        self.inner.borrow().stage_agg.iter().map(|a| a.cycles).sum()
    }

    /// Per-stage self totals, sorted by stage name.
    pub fn stage_totals(&self) -> Vec<(String, StageTotals)> {
        let inner = self.inner.borrow();
        inner
            .stage_index
            .iter()
            .map(|(name, &i)| (name.clone(), inner.stage_agg[i]))
            .collect()
    }

    /// All span records currently in the ring, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.borrow().spans.iter().copied().collect()
    }

    /// The span record with the given id, if still in the ring.
    pub fn span(&self, id: SpanId) -> Option<SpanRecord> {
        self.inner
            .borrow()
            .spans
            .iter()
            .find(|s| s.id == id)
            .copied()
    }

    /// Direct children of a span still in the ring, oldest first.
    pub fn children(&self, id: SpanId) -> Vec<SpanRecord> {
        self.inner
            .borrow()
            .spans
            .iter()
            .filter(|s| s.parent == Some(id))
            .copied()
            .collect()
    }

    /// Spans recorded for one packet trace id, oldest first. The full
    /// causal tree can reach across trace ids (e.g. notify packets carry
    /// trace 0); follow `parent` links via [`Profiler::span`] for those.
    pub fn packet_spans(&self, trace: u64) -> Vec<SpanRecord> {
        self.inner
            .borrow()
            .spans
            .iter()
            .filter(|s| s.trace == trace)
            .copied()
            .collect()
    }

    /// The stage-name stack of a span, outermost first (e.g.
    /// `["be_tx", "nsh_encap"]`), derived from its interned path.
    pub fn stack(&self, id: SpanId) -> Vec<String> {
        let inner = self.inner.borrow();
        let mut out = Vec::new();
        let mut cur = id.path;
        while (cur as usize) < inner.paths.len() {
            let node = &inner.paths[cur as usize];
            out.push(inner.stages[node.stage].clone());
            if node.parent == NO_PATH {
                break;
            }
            cur = node.parent;
        }
        out.reverse();
        out
    }

    /// Collapsed-stack flamegraph text: one `frame;frame;... cycles` line
    /// per stack path with nonzero self cycles, sorted lexicographically.
    /// Feed to `flamegraph.pl` / `inferno-flamegraph` as-is.
    pub fn flamegraph(&self) -> String {
        let inner = self.inner.borrow();
        let mut lines: Vec<String> = Vec::new();
        for (pid, agg) in inner.path_agg.iter().enumerate() {
            if agg.cycles == 0 {
                continue;
            }
            let mut stack = Vec::new();
            let mut cur = pid as u32;
            loop {
                let node = &inner.paths[cur as usize];
                stack.push(inner.stages[node.stage].as_str());
                if node.parent == NO_PATH {
                    break;
                }
                cur = node.parent;
            }
            stack.reverse();
            lines.push(format!("{} {}", stack.join(";"), agg.cycles));
        }
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Chrome `trace_event` JSON for the span ring: complete (`"X"`)
    /// events with microsecond timestamps derived from [`SimTime`], one
    /// process per server and one thread per vNIC. Load via
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        let inner = self.inner.borrow();
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in inner.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ts = s.start.0 as f64 / 1000.0;
            let dur = s.end.0.saturating_sub(s.start.0) as f64 / 1000.0;
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"nezha\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":{},\"tid\":{},\"args\":{{\"span\":{},\"parent\":{},\"trace\":{},\
                 \"cycles\":{},\"bytes\":{},\"packets\":{}}}}}",
                json_str(&inner.stages[s.stage.0]),
                json_f64(ts),
                json_f64(dur),
                s.server.0,
                s.vnic.0,
                s.id.to_raw(),
                s.parent.map_or(0, SpanId::to_raw),
                s.trace,
                s.cycles,
                s.bytes,
                s.packets,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// The standard Nezha stage vocabulary, pre-registered as a bundle.
///
/// Both the vSwitch and the cluster register a `StageSet` against the
/// same shared [`Profiler`] at startup (registration is idempotent, so
/// the handles agree) and index it from their hot paths.
#[derive(Clone, Debug)]
pub struct StageSet {
    /// Header parse cost.
    pub parse: StageHandle,
    /// Per-byte DMA + copy cost.
    pub dma: StageHandle,
    /// Session/flow-table lookup (fast hit) or creation (slow path).
    pub session_lookup: StageHandle,
    /// BE connection-state adoption/update.
    pub session_update: StageHandle,
    /// First-packet slow-path overhead (upcalls, validation).
    pub slowpath: StageHandle,
    /// NSH encapsulation work.
    pub nsh_encap: StageHandle,
    /// NSH decapsulation work.
    pub nsh_decap: StageHandle,
    /// Notify processing.
    pub notify: StageHandle,
    /// Rule-pipeline tiers: `rule_tier0` (base pipeline + ACL) through
    /// `rule_tier{RULE_TIERS-1}` (extra per-table costs).
    pub rule_tiers: Vec<StageHandle>,
    /// Root: traditional local (non-offloaded) processing.
    pub local: StageHandle,
    /// Root: BE egress handling (state update + encap toward an FE).
    pub be_tx: StageHandle,
    /// Root: FE handling of a BE-encapsulated egress carry.
    pub fe_tx_carry: StageHandle,
    /// Root: FE handling of ingress traffic from the gateway.
    pub fe_rx: StageHandle,
    /// Root: BE handling of an FE-encapsulated ingress carry.
    pub be_rx_carry: StageHandle,
    /// Root: BE handling of an FE notify.
    pub be_notify: StageHandle,
    /// Root: BE handling of ingress that bypassed the FEs.
    pub be_direct_rx: StageHandle,
    /// Marker: a packet discarded by the fault engine (0 cycles).
    pub fault_drop: StageHandle,
}

impl StageSet {
    /// Registers the standard stages (idempotent).
    pub fn register(p: &Profiler) -> StageSet {
        StageSet {
            parse: p.stage("parse"),
            dma: p.stage("dma"),
            session_lookup: p.stage("session_lookup"),
            session_update: p.stage("session_update"),
            slowpath: p.stage("slowpath"),
            nsh_encap: p.stage("nsh_encap"),
            nsh_decap: p.stage("nsh_decap"),
            notify: p.stage("notify"),
            rule_tiers: (0..RULE_TIERS)
                .map(|i| p.stage(&format!("rule_tier{i}")))
                .collect(),
            local: p.stage("local"),
            be_tx: p.stage("be_tx"),
            fe_tx_carry: p.stage("fe_tx_carry"),
            fe_rx: p.stage("fe_rx"),
            be_rx_carry: p.stage("be_rx_carry"),
            be_notify: p.stage("be_notify"),
            be_direct_rx: p.stage("be_direct_rx"),
            fault_drop: p.stage("fault_drop"),
        }
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` deterministically (shortest round-trip form).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: StageHandle, parent: Option<SpanId>, cycles: u64) -> Span {
        Span {
            stage,
            parent,
            trace: 7,
            server: ServerId(1),
            vnic: VnicId(2),
            start: SimTime(1_000),
            end: SimTime(2_000),
            cycles,
            bytes: 64,
            packets: 1,
        }
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::new();
        let s = p.stage("parse");
        assert_eq!(p.record(span(s, None, 100)), None);
        assert_eq!(p.recorded(), 0);
        assert_eq!(p.total_cycles(), 0);
        assert_eq!(p.flamegraph(), "");
        assert_eq!(
            p.chrome_trace(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn stage_registration_is_idempotent() {
        let p = Profiler::new();
        let a = p.stage("parse");
        let b = p.stage("parse");
        assert_eq!(a, b);
        assert_eq!(p.stage_name(a), "parse");
    }

    #[test]
    fn span_ids_round_trip_through_raw() {
        let p = Profiler::new();
        p.enable(16);
        let s = p.stage("parse");
        let id = p.record(span(s, None, 10)).unwrap();
        assert_eq!(SpanId::from_raw(id.to_raw()), Some(id));
        assert_eq!(SpanId::from_raw(0), None);
    }

    #[test]
    fn totals_and_flamegraph_accumulate_per_stack() {
        let p = Profiler::new();
        p.enable(16);
        let root = p.stage("be_tx");
        let leaf = p.stage("session_update");
        let r = p.record(span(root, None, 0)).unwrap();
        p.record(span(leaf, Some(r), 250)).unwrap();
        p.record(span(leaf, Some(r), 250)).unwrap();
        let r2 = p.record(span(root, None, 0)).unwrap();
        p.record(span(leaf, Some(r2), 100)).unwrap();
        assert_eq!(p.total_cycles(), 600);
        assert_eq!(p.flamegraph(), "be_tx;session_update 600\n");
        let totals = p.stage_totals();
        let (_, t) = totals.iter().find(|(n, _)| n == "session_update").unwrap();
        assert_eq!(t.cycles, 600);
        assert_eq!(t.packets, 3);
        assert_eq!(
            p.stack(p.children(r)[0].id),
            vec!["be_tx", "session_update"]
        );
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_aggregates() {
        let p = Profiler::new();
        p.enable(2);
        let s = p.stage("parse");
        let a = p.record(span(s, None, 1)).unwrap();
        let _b = p.record(span(s, None, 2)).unwrap();
        let _c = p.record(span(s, None, 3)).unwrap();
        assert_eq!(p.evicted(), 1);
        assert_eq!(p.recorded(), 3);
        assert_eq!(p.span(a), None);
        assert_eq!(p.spans().len(), 2);
        assert_eq!(p.total_cycles(), 6);
    }

    #[test]
    fn children_and_packet_queries_follow_links() {
        let p = Profiler::new();
        p.enable(16);
        let root = p.stage("fe_tx_carry");
        let leaf = p.stage("nsh_decap");
        let r = p.record(span(root, None, 0)).unwrap();
        let c = p.record(span(leaf, Some(r), 400)).unwrap();
        let kids = p.children(r);
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].id, c);
        assert_eq!(p.packet_spans(7).len(), 2);
        assert_eq!(p.packet_spans(8).len(), 0);
    }

    #[test]
    fn chrome_trace_is_valid_shape_and_deterministic() {
        let mk = || {
            let p = Profiler::new();
            p.enable(16);
            let s = p.stage("parse");
            let r = p.record(span(s, None, 123)).unwrap();
            p.record(span(s, Some(r), 45)).unwrap();
            p.chrome_trace()
        };
        let a = mk();
        assert_eq!(a, mk());
        assert!(a.starts_with("{\"displayTimeUnit\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"ts\":1.0"));
        assert!(a.ends_with("]}"));
    }

    #[test]
    fn stage_set_handles_agree_across_registrations() {
        let p = Profiler::new();
        let a = StageSet::register(&p);
        let b = StageSet::register(&p);
        assert_eq!(a.parse, b.parse);
        assert_eq!(a.rule_tiers, b.rule_tiers);
        assert_eq!(a.rule_tiers.len(), RULE_TIERS);
    }
}

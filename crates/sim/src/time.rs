//! Simulated time: a nanosecond clock with no relation to wall time.
//!
//! All timestamps in the simulator are [`SimTime`] (nanoseconds since the
//! start of the run) and all intervals are [`SimDuration`]. Using plain
//! `u64` nanoseconds keeps comparisons and arithmetic branch-free in the
//! event queue hot path while covering ~584 years of simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the run began.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the start of the run.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier`
    /// is in the future.
    pub const fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from fractional seconds (negative clamps to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9) as u64)
    }

    /// The duration in nanoseconds.
    pub const fn nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Scales by an integer factor.
    pub const fn times(self, n: u64) -> Self {
        SimDuration(self.0 * n)
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_secs(2).nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).nanos(), 3_000_000);
        assert_eq!(SimDuration::from_micros(4).nanos(), 4_000);
        assert_eq!(SimDuration::from_nanos(5).nanos(), 5);
        assert_eq!(SimDuration::from_secs_f64(1.5).nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(t.nanos(), 1_000_000_000);
        let mut t2 = t;
        t2 += SimDuration::from_millis(500);
        assert_eq!((t2 - t).as_millis_f64(), 500.0);
        // Saturating behaviour for reversed operands.
        assert_eq!(t - t2, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_selects_sensible_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7.000us");
        assert_eq!(SimDuration::from_nanos(9).to_string(), "9ns");
        assert_eq!(SimTime(1_500_000_000).to_string(), "t=1.500000s");
    }

    #[test]
    fn conversions() {
        let d = SimDuration::from_millis(1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
        assert_eq!(d.times(2), SimDuration::from_secs(3));
        assert_eq!(SimTime(5).max(SimTime(9)), SimTime(9));
    }
}

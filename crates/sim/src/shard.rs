//! Sharded-execution substrate: contiguous partitions and deterministic
//! barrier merges.
//!
//! A sharded simulator splits its id space (servers, tenants) into
//! per-shard partitions that run independently between barriers, then
//! exchanges cross-shard effects at the barrier. Two rules make the
//! result independent of the shard count:
//!
//! 1. **Contiguous balanced partitions** ([`ShardSpec`]): shard `i` owns
//!    an ascending, contiguous id range, so concatenating per-shard
//!    output in ascending shard order reproduces the global ascending id
//!    order for *any* shard count.
//! 2. **Keyed barrier merges** ([`merge_effects`]): the merged effect
//!    order is a pure function of (shard id, sorted effect keys) — never
//!    of arrival order, thread interleaving, or container layout.
//!
//! `nezha-core`'s region simulator builds its shard/barrier layer on
//! these two primitives; the proptests in
//! `crates/sim/tests/shard_properties.rs` pin the invariants.

use std::ops::Range;

/// A balanced, contiguous partition of the id space `[0, items)` into
/// `shards` ascending ranges.
///
/// The first `items % shards` shards hold one extra id, so shard sizes
/// differ by at most one and the concatenation of `range(0)..range(n-1)`
/// is exactly `0..items` in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    shards: u32,
    items: u64,
}

impl ShardSpec {
    /// A partition of `items` ids across `shards` shards.
    ///
    /// `shards` must be nonzero; `items` may be zero (every range is
    /// then empty).
    pub fn new(shards: u32, items: u64) -> Self {
        assert!(shards > 0, "ShardSpec needs at least one shard");
        ShardSpec { shards, items }
    }

    /// Number of shards.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Total number of ids partitioned.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The contiguous id range owned by `shard`.
    pub fn range(&self, shard: u32) -> Range<u64> {
        assert!(shard < self.shards, "shard {shard} out of range");
        let shard = u64::from(shard);
        let base = self.items / u64::from(self.shards);
        let rem = self.items % u64::from(self.shards);
        // The first `rem` shards each take one extra id.
        let start = shard * base + shard.min(rem);
        let len = base + u64::from(shard < rem);
        start..start + len
    }

    /// Number of ids owned by `shard`.
    pub fn len(&self, shard: u32) -> u64 {
        let r = self.range(shard);
        r.end - r.start
    }

    /// True when the partition holds no ids at all.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// The shard owning `item`. Panics when `item >= items`.
    pub fn owner(&self, item: u64) -> u32 {
        assert!(item < self.items, "item {item} out of range");
        let base = self.items / u64::from(self.shards);
        let rem = self.items % u64::from(self.shards);
        let wide_span = rem * (base + 1);
        let shard = if item < wide_span {
            item / (base + 1)
        } else {
            // Past the wide shards every shard holds exactly `base` ids
            // (and `base > 0` here: `item >= wide_span` with `base == 0`
            // would mean `item >= items`, excluded by the assert above).
            rem + (item - wide_span) / base
        };
        shard as u32
    }
}

/// Deterministically merges per-shard keyed effects into one sequence.
///
/// The output order is a pure function of the *contents*: shards are
/// taken in ascending shard id, and each shard's effects in ascending
/// key order. The arrival order of the outer vector and of each shard's
/// effects is irrelevant — the property a barrier needs so that worker
/// scheduling can never leak into simulation results.
///
/// Keys must be unique within a shard (debug-asserted); shard ids must
/// be unique across entries (debug-asserted).
pub fn merge_effects<K: Ord, V>(mut per_shard: Vec<(u32, Vec<(K, V)>)>) -> Vec<(K, V)> {
    per_shard.sort_unstable_by_key(|(shard, _)| *shard);
    debug_assert!(
        per_shard.windows(2).all(|w| w[0].0 != w[1].0),
        "duplicate shard id in barrier merge"
    );
    let total = per_shard.iter().map(|(_, e)| e.len()).sum();
    let mut merged = Vec::with_capacity(total);
    for (_, mut effects) in per_shard {
        effects.sort_by(|a, b| a.0.cmp(&b.0));
        debug_assert!(
            effects.windows(2).all(|w| w[0].0 != w[1].0),
            "duplicate effect key within one shard"
        );
        merged.append(&mut effects);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_partition_the_id_space() {
        for shards in [1u32, 2, 3, 7, 8] {
            for items in [0u64, 1, 7, 8, 9, 100] {
                let spec = ShardSpec::new(shards, items);
                let mut next = 0u64;
                for s in 0..shards {
                    let r = spec.range(s);
                    assert_eq!(r.start, next, "shards={shards} items={items} s={s}");
                    next = r.end;
                }
                assert_eq!(next, items);
            }
        }
    }

    #[test]
    fn shard_sizes_differ_by_at_most_one() {
        let spec = ShardSpec::new(8, 10_001);
        let sizes: Vec<u64> = (0..8).map(|s| spec.len(s)).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "sizes={sizes:?}");
        assert_eq!(sizes.iter().sum::<u64>(), 10_001);
    }

    #[test]
    fn owner_agrees_with_range() {
        for shards in [1u32, 2, 5, 8] {
            for items in [1u64, 9, 64, 1000] {
                let spec = ShardSpec::new(shards, items);
                for item in 0..items {
                    let owner = spec.owner(item);
                    assert!(
                        spec.range(owner).contains(&item),
                        "shards={shards} items={items} item={item} owner={owner}"
                    );
                }
            }
        }
    }

    #[test]
    fn merge_is_invariant_under_arrival_order() {
        let a = || vec![(3u64, "a3"), (1, "a1")];
        let b = || vec![(2u64, "b2")];
        let fwd = merge_effects(vec![(0u32, a()), (1, b())]);
        let rev = merge_effects(vec![(1u32, b()), (0, a())]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd, vec![(1, "a1"), (3, "a3"), (2, "b2")]);
    }

    #[test]
    fn empty_partitions_are_fine() {
        let spec = ShardSpec::new(4, 0);
        assert!(spec.is_empty());
        for s in 0..4 {
            assert_eq!(spec.len(s), 0);
        }
        assert!(merge_effects::<u64, ()>(vec![(0, vec![]), (1, vec![])]).is_empty());
    }
}

//! Seeded randomness and the distribution samplers the workload models use.
//!
//! Everything random in the simulator flows through [`SimRng`], which wraps
//! a seeded `SmallRng`. The heavy-tailed samplers (log-normal, bounded
//! Pareto) are implemented from first principles so we need nothing beyond
//! the `rand` crate itself; they are exactly what the tenant-population
//! model needs to reproduce the paper's extreme skew (Fig. 4 / Table 1:
//! P9999 utilization ~20–64× the average).

use crate::time::SimDuration;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Derives a named RNG stream from a base seed.
///
/// Every `SimRng` outside this module should be seeded through here (or
/// [`derive_seed_indexed`]) with a unique, human-readable stream name:
/// `SimRng::new(derive_seed(cfg.seed, "cluster.faults"))`. Named streams
/// make each component's randomness independent of every other's — and
/// they are the static precondition for sharded region execution, where
/// each shard must be able to re-derive exactly its own streams.
/// `nezha-lint` rule D9 enforces the discipline.
///
/// The mix is an FNV-1a fold of the stream name into the base seed,
/// finished with splitmix64 — deterministic, allocation-free, and stable
/// across platforms.
pub fn derive_seed(base: u64, stream: &str) -> u64 {
    let mut h = base ^ 0xcbf2_9ce4_8422_2325;
    for b in stream.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// [`derive_seed`] for per-instance streams: one stream name, many
/// indexed members (per shard, per server, per tenant).
pub fn derive_seed_indexed(base: u64, stream: &str, index: u64) -> u64 {
    splitmix64(derive_seed(base, stream) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// One round of splitmix64 finalisation.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic random source.
pub struct SimRng {
    inner: SmallRng,
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").finish_non_exhaustive()
    }
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child RNG; used to give each component its
    /// own stream so adding randomness in one place never perturbs another.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        SimRng::new(s)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform choice of an index in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Inter-arrival times of a Poisson process — the natural model for
    /// new-connection arrivals in the CPS workloads.
    pub fn exp(&mut self, mean: f64) -> f64 {
        // Inverse CDF; guard the log away from 0.
        let u = self.f64().max(1e-300);
        -mean * u.ln()
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        let u1 = self.f64().max(1e-300);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Log-normal with the given parameters of the underlying normal.
    ///
    /// `mu`/`sigma` are the mean and stddev of `ln X`. Log-normals are the
    /// workhorse for resource-demand skew and config-push latencies.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Bounded Pareto on `[lo, hi]` with tail index `alpha`.
    ///
    /// Heavy-tailed demand with a hard cap: most samples near `lo`, rare
    /// samples orders of magnitude larger — the Fig. 4 shape.
    pub fn bounded_pareto(&mut self, alpha: f64, lo: f64, hi: f64) -> f64 {
        assert!(alpha > 0.0 && lo > 0.0 && hi > lo);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// An exponentially distributed duration with the given mean.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exp(mean.as_secs_f64()))
    }

    /// A log-normal duration specified by its *median* and the sigma of the
    /// underlying normal (median · e^{σZ}); convenient for modelling config
    /// push latencies where the paper reports medians and tail percentiles.
    pub fn lognormal_duration(&mut self, median: SimDuration, sigma: f64) -> SimDuration {
        SimDuration::from_secs_f64(median.as_secs_f64() * (sigma * self.normal()).exp())
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic_and_stream_sensitive() {
        assert_eq!(derive_seed(7, "cluster.rng"), derive_seed(7, "cluster.rng"));
        assert_ne!(
            derive_seed(7, "cluster.rng"),
            derive_seed(7, "cluster.faults")
        );
        assert_ne!(derive_seed(7, "cluster.rng"), derive_seed(8, "cluster.rng"));
        // Streams must differ from the raw base seed too.
        assert_ne!(derive_seed(7, "cluster.rng"), 7);
    }

    #[test]
    fn derive_seed_indexed_separates_members() {
        let a = derive_seed_indexed(7, "shard.rng", 0);
        let b = derive_seed_indexed(7, "shard.rng", 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_seed_indexed(7, "shard.rng", 0));
        assert_ne!(a, derive_seed(7, "shard.rng"));
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut root1 = SimRng::new(7);
        let mut root2 = SimRng::new(7);
        let mut c1 = root1.fork(1);
        let mut c2 = root2.fork(1);
        assert_eq!(c1.range(0, 1000), c2.range(0, 1000));
        let mut d = root1.fork(2);
        // Different labels after identical fork histories diverge (with
        // overwhelming probability for any reasonable sample count).
        let same = (0..32).all(|_| c1.f64().to_bits() == d.f64().to_bits());
        assert!(!same);
    }

    #[test]
    fn exp_mean_is_right() {
        let mut rng = SimRng::new(1);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| rng.exp(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(2);
        let n = 40_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn lognormal_median() {
        let mut rng = SimRng::new(3);
        let n = 20_001;
        let mut samples: Vec<f64> = (0..n).map(|_| rng.lognormal(2.0, 1.0)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[n / 2];
        // Median of lognormal is e^mu.
        assert!(
            (median - 2.0f64.exp()).abs() / 2.0f64.exp() < 0.1,
            "median={median}"
        );
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_skew() {
        let mut rng = SimRng::new(4);
        let (lo, hi) = (1.0, 1000.0);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.bounded_pareto(1.2, lo, hi)).collect();
        assert!(samples.iter().all(|&x| (lo..=hi).contains(&x)));
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let p50 = sorted[n / 2];
        let p9999 = sorted[n - 2];
        // Extreme skew: top sample far above the median.
        assert!(p9999 / p50 > 50.0, "p50={p50} p9999={p9999}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!((0..100).all(|_| rng.chance(1.1)));
        assert!((0..100).all(|_| !rng.chance(-0.5)));
    }

    #[test]
    fn durations_are_nonnegative_and_scaled() {
        let mut rng = SimRng::new(6);
        let mean = SimDuration::from_millis(100);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp_duration(mean).as_secs_f64()).sum();
        assert!((total / n as f64 - 0.1).abs() < 0.005);
        let med = SimDuration::from_millis(200);
        let d = rng.lognormal_duration(med, 0.3);
        assert!(d.nanos() > 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(9);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }
}

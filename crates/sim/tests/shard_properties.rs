//! Property tests of the sharded-execution substrate.
//!
//! Two contracts underpin the shard-count-invariance guarantee of the
//! region simulator, and both are pinned here:
//!
//! * **Barrier-merge ordering** — [`merge_effects`] must produce the
//!   same output for *any* arrival order of the per-shard effect lists
//!   (outer shard order and inner effect order), and that output must
//!   equal the canonical model: concatenation in ascending (shard id,
//!   key) order. If arrival order ever leaked into the merge, the shard
//!   count (and thread scheduling, if shards ever run in parallel)
//!   would become observable.
//! * **Stream separation** — `derive_seed_indexed` must give every
//!   (stream, index) pair of the region's RNG tree a distinct seed for
//!   arbitrary base seeds: a collision would make two servers (or a
//!   server and a tenant) draw identical randomness, silently coupling
//!   supposedly independent partitions.

use nezha_sim::rng::{derive_seed_indexed, SimRng};
use nezha_sim::shard::{merge_effects, ShardSpec};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Builds the canonical per-shard effect lists from generated key sets:
/// shard `i` owns the i-th key set, values encode (shard, key) so any
/// reordering is detectable.
fn canonical(key_sets: &[BTreeSet<u64>]) -> Vec<(u32, Vec<(u64, u64)>)> {
    key_sets
        .iter()
        .enumerate()
        .map(|(i, keys)| {
            (
                i as u32,
                keys.iter().map(|&k| (k, (i as u64) << 32 | k)).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The barrier merge is invariant under arbitrary arrival
    /// permutations and always equals the (shard, key)-sorted model.
    #[test]
    fn merge_is_arrival_order_invariant(
        raw_keys in prop::collection::vec(
            prop::collection::vec(0u64..1_000, 0..16),
            1..8,
        ),
        shuffle_seed in any::<u64>(),
    ) {
        // Dedup per shard: a barrier batch keys effects uniquely.
        let key_sets: Vec<BTreeSet<u64>> =
            raw_keys.into_iter().map(|ks| ks.into_iter().collect()).collect();
        let reference = merge_effects(canonical(&key_sets));

        // The model: ascending shard id, then ascending key within it.
        let mut model = Vec::new();
        for (i, keys) in key_sets.iter().enumerate() {
            for &k in keys {
                model.push((k, (i as u64) << 32 | k));
            }
        }
        prop_assert_eq!(&reference, &model);

        // Scramble both the outer shard order and every inner effect
        // list with a seeded shuffle; the merge must not notice.
        let mut rng = SimRng::new(shuffle_seed);
        let mut scrambled = canonical(&key_sets);
        rng.shuffle(&mut scrambled);
        for (_, effects) in &mut scrambled {
            rng.shuffle(effects);
        }
        prop_assert_eq!(merge_effects(scrambled), reference);
    }

    /// Partition sanity under arbitrary sizes: every item has exactly
    /// one owner, and the owner's range contains it.
    #[test]
    fn partition_owner_and_range_agree(
        shards in 1u32..12,
        items in 0u64..5_000,
    ) {
        let spec = ShardSpec::new(shards, items);
        let mut covered = 0u64;
        for s in 0..shards {
            covered += spec.len(s);
        }
        prop_assert_eq!(covered, items);
        // Spot-check ownership across the whole range.
        for item in (0..items).step_by(37) {
            let owner = spec.owner(item);
            prop_assert!(spec.range(owner).contains(&item));
        }
    }
}

#[test]
fn indexed_streams_never_collide() {
    // For a spread of arbitrary base seeds, every (stream, index) pair
    // in the region's RNG tree must map to a unique derived seed — and
    // none may equal the base itself.
    let streams = [
        "region.server",
        "region.tenant",
        "region.shard.fault",
        "region.controller",
        "region.completion",
    ];
    let mut base_rng = SimRng::new(0x5eed_5eed);
    for _ in 0..64 {
        let base = base_rng.range(0, u64::MAX);
        let mut seen = BTreeSet::new();
        seen.insert(base);
        for stream in streams {
            for idx in 0..512u64 {
                let derived = derive_seed_indexed(base, stream, idx);
                assert!(
                    seen.insert(derived),
                    "collision: base={base:#x} stream={stream} idx={idx}"
                );
            }
        }
    }
}

//! Property tests of the simulation substrate: event ordering, CPU-server
//! conservation laws, utilization-window behaviour, and topology metrics.

use nezha_sim::engine::Engine;
use nezha_sim::resources::{CpuServer, MemoryPool, UtilizationWindow};
use nezha_sim::time::{SimDuration, SimTime};
use nezha_sim::topology::{Topology, TopologyConfig};
use nezha_types::ServerId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Pops are globally ordered by (time, schedule sequence), regardless
    /// of insertion order.
    #[test]
    fn engine_pops_in_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut eng = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule_at(SimTime(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        let mut popped = 0;
        while let Some(s) = eng.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(s.at > lt || (s.at == lt && s.event > li));
            }
            last = Some((s.at, s.event));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// The CPU server never drops while the backlog bound is respected,
    /// accepted+dropped equals offered, and completion times are
    /// monotone in offer order.
    #[test]
    fn cpu_server_conservation(
        jobs in prop::collection::vec((0u64..4_000_000, 1u64..200_000), 1..200),
    ) {
        let mut cpu = CpuServer::new(2, 1_000_000_000, SimDuration::from_millis(2));
        let mut t = SimTime(0);
        let mut last_done: Option<SimTime> = None;
        let mut accepted = 0u64;
        let mut dropped = 0u64;
        for (gap, cycles) in jobs.iter() {
            t += SimDuration(*gap);
            match cpu.offer(t, *cycles) {
                nezha_sim::resources::CpuOutcome::Done { done_at } => {
                    prop_assert!(done_at >= t);
                    if let Some(ld) = last_done {
                        prop_assert!(done_at >= ld, "FIFO service order violated");
                    }
                    last_done = Some(done_at);
                    accepted += 1;
                }
                nezha_sim::resources::CpuOutcome::Dropped => {
                    // Drops only under a genuinely deep backlog.
                    prop_assert!(cpu.queue_delay(t) > SimDuration::from_millis(2));
                    dropped += 1;
                }
            }
        }
        prop_assert_eq!(cpu.counters(), (accepted, dropped));
        prop_assert_eq!(accepted + dropped, jobs.len() as u64);
    }

    /// Memory pool: any alloc/free sequence that the pool accepts keeps
    /// `used + available == capacity` and `used <= peak <= capacity`.
    #[test]
    fn memory_pool_invariants(ops in prop::collection::vec((prop::bool::ANY, 1u64..5_000), 1..200)) {
        let mut pool = MemoryPool::new(100_000);
        let mut ledger: Vec<u64> = Vec::new();
        for (is_alloc, size) in ops {
            if is_alloc {
                if pool.alloc(size).is_ok() {
                    ledger.push(size);
                }
            } else if let Some(sz) = ledger.pop() {
                pool.free(sz);
            }
            prop_assert_eq!(pool.used() + pool.available(), pool.capacity());
            prop_assert_eq!(pool.used(), ledger.iter().sum::<u64>());
            prop_assert!(pool.peak() >= pool.used());
            prop_assert!(pool.peak() <= pool.capacity());
        }
    }

    /// Utilization windows never report more work than was added, and
    /// report zero once a full window has passed since the last add.
    #[test]
    fn window_bounds(adds in prop::collection::vec((0u64..50_000_000, 0.0f64..100.0), 1..100)) {
        let mut w = UtilizationWindow::new(SimDuration::from_millis(10));
        let mut t = SimTime(0);
        let mut total = 0.0;
        for (gap, amt) in adds {
            t += SimDuration(gap);
            w.add(t, amt);
            total += amt;
            let s = w.sum(t);
            prop_assert!(s <= total + 1e-9, "window {s} exceeds all work {total}");
            prop_assert!(s >= 0.0);
        }
        prop_assert_eq!(w.sum(t + SimDuration::from_millis(11)), 0.0);
    }

    /// Topology: hop counts are symmetric, zero iff same server, and
    /// latency is monotone in both hops and bytes.
    #[test]
    fn topology_metrics(a in 0u32..256, b in 0u32..256, bytes in 0usize..10_000) {
        let topo = Topology::new(TopologyConfig {
            servers_per_rack: 8,
            racks_per_pod: 4,
            pods: 8,
            ..TopologyConfig::default()
        });
        let (a, b) = (ServerId(a), ServerId(b));
        prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
        prop_assert_eq!(topo.hops(a, b) == 0, a == b);
        prop_assert!(topo.latency(a, b, bytes + 1) >= topo.latency(a, b, bytes));
        if a != b {
            prop_assert!(topo.latency(a, b, bytes) >= topo.latency(a, a, bytes));
        }
        // Rack peers really share the rack.
        for p in topo.rack_peers(a) {
            prop_assert!(topo.same_rack(a, p));
            prop_assert_eq!(topo.hops(a, p), 2);
        }
    }
}

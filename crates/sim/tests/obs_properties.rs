//! Property tests of the observability plane's histogram contract.
//!
//! Two guarantees are load-bearing for the rest of the PR and are pinned
//! here over randomized inputs rather than hand-picked vectors:
//!
//! * **Merge algebra** — [`LogHistogram::merge`] must be associative and
//!   commutative up to full state equality (counts, low bucket, total,
//!   extrema). This is what makes per-shard histograms merge at a
//!   barrier into exactly the state a single-shard run would have
//!   recorded, for any shard count and any grouping.
//! * **Quantile error bound** — every percentile query on values inside
//!   the tracked range must land within [`REL_ERROR_BOUND`] of the exact
//!   answer computed by [`Samples`] over the same observations, on both
//!   log-uniform and heavy-tailed inputs.

use nezha_sim::obs::{LogHistogram, REL_ERROR_BOUND};
use nezha_sim::stats::Samples;
use proptest::prelude::*;

/// Log-uniform positive values spanning ~52 octaves of the tracked
/// range: a uniform exponent plus a uniform mantissa, mirroring how the
/// bucketer itself decomposes a float.
fn log_uniform() -> impl Strategy<Value = f64> {
    (0u32..52, 0u64..(1u64 << 52)).prop_map(|(e, m)| {
        let mantissa = 1.0 + (m as f64) / (1u64 << 52) as f64;
        mantissa * 2f64.powi(e as i32 - 24)
    })
}

/// Heavy-tailed (Pareto-style) values: most observations near the scale
/// floor, rare ones orders of magnitude above — the latency-distribution
/// shape the p999 path exists for.
fn heavy_tail() -> impl Strategy<Value = f64> {
    (0.0f64..0.999).prop_map(|u| 1e-3 * (1.0 - u).powi(-3))
}

/// Observation stream for the merge-algebra properties: mostly in-range
/// positives, with zeros and negatives mixed in so the low bucket and
/// the extrema union are exercised too.
fn observation() -> impl Strategy<Value = f64> {
    (0u32..10, 0u32..52, 0u64..(1u64 << 52), 0.0f64..5.0).prop_map(|(sel, e, m, neg)| match sel {
        8 => 0.0,
        9 => -neg,
        _ => {
            let mantissa = 1.0 + (m as f64) / (1u64 << 52) as f64;
            mantissa * 2f64.powi(e as i32 - 24)
        }
    })
}

fn hist_of(values: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// `a ∪ b == b ∪ a`, and splitting a stream across two histograms
    /// then merging equals recording the whole stream into one.
    #[test]
    fn merge_is_commutative_and_equals_direct_recording(
        a in prop::collection::vec(observation(), 0..200),
        b in prop::collection::vec(observation(), 0..200),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        let whole: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(&ab, &hist_of(&whole), "merge must equal direct recording");
    }

    /// `(a ∪ b) ∪ c == a ∪ (b ∪ c)` — the grouping of barrier merges
    /// (pairwise, tree, or left-fold over shards) cannot matter.
    #[test]
    fn merge_is_associative(
        a in prop::collection::vec(observation(), 0..120),
        b in prop::collection::vec(observation(), 0..120),
        c in prop::collection::vec(observation(), 0..120),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Every quantile on log-uniform in-range data is within the
    /// documented relative error of the exact (Samples) answer.
    #[test]
    fn percentiles_match_exact_within_bound_log_uniform(
        values in prop::collection::vec(log_uniform(), 1..600),
    ) {
        check_percentile_bound(&values)?;
    }

    /// Same bound on heavy-tailed data, where a few huge outliers pull
    /// the top quantiles far from the body of the distribution.
    #[test]
    fn percentiles_match_exact_within_bound_heavy_tail(
        values in prop::collection::vec(heavy_tail(), 1..600),
    ) {
        check_percentile_bound(&values)?;
    }
}

fn check_percentile_bound(values: &[f64]) -> Result<(), TestCaseError> {
    let h = hist_of(values);
    let mut exact = Samples::new();
    for &v in values {
        exact.record(v);
    }
    for p in [50.0, 90.0, 99.0, 99.9, 100.0] {
        let approx = h.percentile(p);
        let truth = exact.percentile(p);
        let rel = (approx - truth).abs() / truth;
        prop_assert!(
            rel <= REL_ERROR_BOUND,
            "p{}: approx {} vs exact {} (rel err {})",
            p,
            approx,
            truth,
            rel
        );
    }
    Ok(())
}

//! Property tests of the interned dense-index structures that replaced
//! per-packet `BTreeMap` lookups on the datapath.
//!
//! Two contracts are pinned here:
//!
//! * **Round-trip** — after any insert/remove sequence, a [`DenseMap`]
//!   agrees with a `BTreeMap` model on length, membership, and every
//!   value, and an [`Interner`] resolves every id back to its value.
//! * **D3 iteration order** — determinism requires ordered *iteration*,
//!   not ordered *lookup*: iteration order must be a pure function of
//!   the call sequence (insertion order with `swap_remove` backfill),
//!   regression-checked against an explicit model on three fixed seeds.

use nezha_sim::dense::{DenseMap, Interner};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Dense-index ↔ BTreeMap round-trip: both maps see the same op
    /// sequence and must agree on every observable afterwards.
    #[test]
    fn dense_map_matches_btreemap(
        ops in prop::collection::vec((0u16..64, prop::bool::ANY, 0u32..1000), 1..400),
    ) {
        let mut dense: DenseMap<u16, u32> = DenseMap::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for (key, is_insert, val) in ops {
            if is_insert {
                prop_assert_eq!(dense.insert(key, val), model.insert(key, val));
            } else {
                prop_assert_eq!(dense.remove(&key), model.remove(&key));
            }
            prop_assert_eq!(dense.len(), model.len());
        }
        for k in 0u16..64 {
            prop_assert_eq!(dense.get(&k), model.get(&k), "lookup diverged at key {}", k);
            prop_assert_eq!(dense.contains_key(&k), model.contains_key(&k));
        }
        // Same contents, independent of each map's own order.
        let mut got: Vec<(u16, u32)> = dense.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_unstable();
        let want: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Interner round-trip: every id resolves back to the value it was
    /// minted for, re-interning is stable, and distinct values get
    /// distinct ids.
    #[test]
    fn interner_round_trip(vals in prop::collection::vec(0u64..50, 1..200)) {
        let mut interner: Interner<u64> = Interner::new();
        let ids: Vec<u32> = vals.iter().map(|&v| interner.intern(v)).collect();
        for (&v, &id) in vals.iter().zip(&ids) {
            prop_assert_eq!(*interner.resolve(id), v);
            prop_assert_eq!(interner.intern(v), id, "re-intern must be stable");
        }
        let distinct: std::collections::BTreeSet<u64> = vals.iter().copied().collect();
        prop_assert_eq!(interner.len(), distinct.len());
    }
}

/// A fixed-seed splitmix-style generator so the regression sequences
/// below never change between runs or platforms.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// D3 regression on three seeds: iteration order equals the documented
/// discipline — insertion order, `swap_remove` backfill on removal,
/// relative order preserved by `retain` — replayed against an explicit
/// `Vec` model of that discipline.
#[test]
fn iteration_order_follows_swap_remove_discipline() {
    for seed in [0x4e5a_0001u64, 0x4e5a_0002, 0x4e5a_0003] {
        let mut state = seed;
        let mut dense: DenseMap<u64, u64> = DenseMap::new();
        // The model: exactly the order the map documents, maintained by
        // the same primitive (Vec::swap_remove) the map uses internally.
        let mut order: Vec<u64> = Vec::new();
        for step in 0..600u64 {
            let key = lcg(&mut state) % 96;
            match lcg(&mut state) % 7 {
                0 | 1 => {
                    if dense.remove(&key).is_some() {
                        let pos = order.iter().position(|&k| k == key).unwrap();
                        order.swap_remove(pos);
                    }
                }
                2 => {
                    dense.retain(|k, _| k % 3 != key % 3);
                    order.retain(|k| k % 3 != key % 3);
                }
                _ => {
                    if dense.insert(key, step).is_none() {
                        order.push(key);
                    }
                }
            }
            let got: Vec<u64> = dense.keys().copied().collect();
            assert_eq!(got, order, "seed {seed:#x} diverged at step {step}");
        }
        assert!(!order.is_empty(), "seed {seed:#x} ended empty — weak test");
    }
}

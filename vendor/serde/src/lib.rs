//! Offline stand-in for the `serde` crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on config structs purely
//! as forward-looking markers — nothing serializes through serde today, and
//! no API takes serde trait bounds. This shim provides the trait names and
//! re-exports no-op derive macros so those derives keep compiling without
//! network access. Swap back to the real crates-io `serde` by deleting
//! `vendor/serde*` and restoring the registry dependency.

/// Marker for types that could be serialized (no-op in the shim).
pub trait Serialize {}

/// Marker for types that could be deserialized (no-op in the shim).
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

//! The [`Strategy`] trait and the built-in combinators: ranges, tuples,
//! `prop_map`, and `Just`.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply draws a fresh value per case.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy adapter applying a function to every generated value.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Strategy producing clones of one fixed value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9, K.10, L.11);

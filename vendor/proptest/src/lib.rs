//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro (with `#![proptest_config(...)]`), `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, `any::<T>()`, range strategies, tuple
//! strategies, `prop::bool::ANY`, `prop::collection::vec`,
//! `prop::option::of`, `prop::sample::select`, and `Strategy::prop_map`.
//!
//! Differences from real proptest, by design (see `vendor/README.md`):
//! - **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) and case index, but is not minimized.
//! - **Fixed seeding.** Each test's RNG is seeded from a hash of the test
//!   name, so runs are fully deterministic — there is no persistence file
//!   and no environment-variable seed override.

pub mod arbitrary;
pub mod strategy;
pub mod test_runner;

/// Strategy modules under the conventional `prop::` path
/// (`prop::bool::ANY`, `prop::collection::vec`, ...).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding uniformly random booleans.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// Uniformly random booleans.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn new_value(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// A length distribution for generated collections
        /// (inclusive bounds).
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        #[derive(Clone, Copy, Debug)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is uniform over `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64 + 1;
                let len = self.size.lo + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Option<S::Value>`.
        #[derive(Clone, Copy, Debug)]
        pub struct OptionStrategy<S>(S);

        /// Generates `Some` three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 3 == 0 {
                    None
                } else {
                    Some(self.0.new_value(rng))
                }
            }
        }
    }

    /// Sampling from fixed pools.
    pub mod sample {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy picking uniformly from a fixed set of values.
        #[derive(Clone, Debug)]
        pub struct Select<T: Clone>(Vec<T>);

        /// Picks uniformly from `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select: empty pool");
            Select(items)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn new_value(&self, rng: &mut TestRng) -> T {
                let i = (rng.next_u64() % self.0.len() as u64) as usize;
                self.0[i].clone()
            }
        }
    }
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests over generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0u32..100, flag in prop::bool::ANY) {
///         prop_assert!(x < 100 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::test_runner::run(stringify!($name), &__cfg, |__rng| {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (without panicking the generator loop) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Discards the current case (drawing a fresh one) when the precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(any::<u16>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_tuples_compose(
            pair in (0u64..10, prop::bool::ANY).prop_map(|(n, b)| if b { n + 100 } else { n }),
        ) {
            prop_assert!(pair < 10 || (100..110).contains(&pair));
        }
    }

    #[test]
    fn same_name_same_stream() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("same_name_same_stream");
        let mut b = crate::test_runner::TestRng::for_test("same_name_same_stream");
        let s = 0u64..1_000_000;
        for _ in 0..100 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}

//! Deterministic case runner: fixed name-derived seeding, no shrinking.

/// Per-test configuration. Only `cases` is consulted; the remaining knobs
/// exist for signature compatibility with real proptest call sites.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// An assertion failed; aborts the whole test.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is redrawn.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The runner's random source (xoshiro256++ over a splitmix64-expanded
/// seed). Seeded from the test name, so every run of a given test sees the
/// same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// A generator seeded from a test's name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Drives one `proptest!`-defined test: draws cases until `cfg.cases`
/// accepted cases pass, panicking on the first failure.
pub fn run<F>(name: &str, cfg: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::for_test(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < cfg.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > cfg.max_global_rejects {
                    panic!(
                        "proptest '{name}': gave up after {rejected} rejected cases \
                         (last precondition: {why})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed at case #{passed}:\n{msg}");
            }
        }
    }
}

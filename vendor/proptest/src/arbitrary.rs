//! `any::<T>()` — canonical full-domain strategies for primitives.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (uniform over the full domain for
/// integers and bool, `[0, 1)` for floats).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive type.
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        rng.f64()
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

//! Offline stand-in for the `bytes` crate.
//!
//! Provides exactly the surface the Nezha codecs use: the [`BufMut`] write
//! trait (network byte order for the multi-byte putters, matching the real
//! crate) and a [`BytesMut`] growable buffer backed by `Vec<u8>`. See
//! `vendor/README.md` for the shim policy.

use std::ops::{Deref, DerefMut};

/// A trait for buffers that can have bytes appended to them.
///
/// Multi-byte integers are written big-endian, as on the wire — identical
/// to the real `bytes::BufMut` defaults.
pub trait BufMut {
    /// Appends a single byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<T: BufMut + ?Sized> BufMut for &mut T {
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// A growable byte buffer, API-compatible with the subset of
/// `bytes::BytesMut` the codecs use.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with at least `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Current allocation size.
    pub fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    /// Resets the length to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Grows (zero-padding with `fill`) or shrinks to `new_len` bytes.
    pub fn resize(&mut self, new_len: usize, fill: u8) {
        self.inner.resize(new_len, fill);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        BytesMut { inner }
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Self {
        b.inner
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.inner.push(v);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn putters_are_big_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0xab);
        b.put_u16(0x1234);
        b.put_u32(0xdead_beef);
        assert_eq!(&b[..], &[0xab, 0x12, 0x34, 0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn resize_and_clear() {
        let mut b = BytesMut::with_capacity(4);
        b.put_slice(&[1, 2]);
        b.resize(5, 0);
        assert_eq!(b.to_vec(), vec![1, 2, 0, 0, 0]);
        b.clear();
        assert!(b.is_empty());
    }
}

//! No-op stand-ins for serde's derive macros.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker
//! (no code takes `T: Serialize` bounds), so the derives can expand to
//! nothing. See `vendor/README.md` for the shim policy.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is never used as a bound here.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is never used as a bound here.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

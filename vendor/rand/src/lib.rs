//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly what the simulator uses: `SmallRng::seed_from_u64`,
//! `Rng::gen` for primitive types, and `Rng::gen_range` over half-open and
//! inclusive integer ranges. The generator is xoshiro256++ seeded through
//! splitmix64 — the same algorithm family rand 0.8's `SmallRng` uses on
//! 64-bit targets, so statistical quality matches what the simulator's
//! distribution tests expect. Bit-exact parity with crates-io rand is NOT
//! guaranteed (and nothing in the workspace depends on it); determinism
//! within a build is.
//!
//! See `vendor/README.md` for the shim policy.

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be created from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed (expanded via splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform sampling over a primitive type's full domain
/// (`[0,1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1), the standard construction.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// Element type of the range.
    type Output;

    /// Draws one value from the range. Panics on an empty range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind rand 0.8's 64-bit `SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 expansion, as rand_core::SeedableRng specifies.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert!((0..16).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
        }
    }

    #[test]
    fn uniformity_is_roughly_right() {
        // Mean of u8 over the full domain ≈ 127.5; loose 3-sigma band.
        let mut r = SmallRng::seed_from_u64(5);
        let n = 40_000;
        let mean: f64 = (0..n).map(|_| r.gen::<u8>() as f64).sum::<f64>() / n as f64;
        assert!((mean - 127.5).abs() < 2.0, "mean={mean}");
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/struct surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `bench_function`,
//! `benchmark_group`/`bench_with_input`, `iter`, `iter_with_setup`) with a
//! deliberately small time-boxed runner: a short calibration pass picks an
//! iteration count targeting ~20 ms per benchmark, then one measured pass
//! reports mean ns/iter. No statistics, no plots, no saved baselines.
//!
//! Set `NEZHA_BENCH_JSON=1` to emit one JSON line per benchmark
//! (`{"benchmark": ..., "ns_per_iter": ...}`) in addition to the human
//! line, matching the snapshot-style output the experiment harness writes.
//! See `vendor/README.md` for the shim policy.

use std::time::{Duration, Instant};

/// Target wall time for the measured pass of each benchmark.
const TARGET: Duration = Duration::from_millis(20);

/// Measures closures handed to it by benchmark functions.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    fn calibrated_iters(elapsed: Duration) -> u64 {
        if elapsed.is_zero() {
            return 10_000;
        }
        (TARGET.as_nanos() / elapsed.as_nanos().max(1)).clamp(1, 10_000_000) as u64
    }

    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let iters = Self::calibrated_iters(t0.elapsed());
        let t0 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.iters = iters;
        self.elapsed = t0.elapsed();
    }

    /// Times `routine` only, re-running `setup` (untimed) before each call.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let t0 = Instant::now();
        std::hint::black_box(routine(input));
        let iters = Self::calibrated_iters(t0.elapsed()).min(1_000);
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            total += t0.elapsed();
        }
        self.iters = iters;
        self.elapsed = total;
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// An id that is just the parameter, under the group's name.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

fn report(id: &str, b: &Bencher) {
    let ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    println!("bench {id:<40} {ns:>12.1} ns/iter  ({} iters)", b.iters);
    if std::env::var_os("NEZHA_BENCH_JSON").is_some_and(|v| v == "1") {
        println!(
            "{{\"benchmark\": \"{id}\", \"ns_per_iter\": {ns:.1}, \"iters\": {}}}",
            b.iters
        );
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(id, &b);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching real criterion's convenience re-export.
pub use std::hint::black_box;

//! Failover drill: crash an FE under live traffic and watch the health
//! monitor detect it and restore the pool (paper §4.4 / Fig. 14).
//!
//! Run with: `cargo run --release --example failover_drill`

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};
use nezha::workloads::cps::CpsWorkload;

const VNIC: VnicId = VnicId(1);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);

fn main() {
    let cfg = ClusterConfig::builder()
        .cores(1)
        .auto_offload(false)
        .build();
    let mut cluster = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), ServerId(0));
    vnic.allow_inbound_port(9000);
    cluster
        .add_vnic(vnic, ServerId(0), VmConfig::default())
        .unwrap();

    cluster.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    cluster.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    let fes = cluster.fe_servers(VNIC);
    println!("pool up: FEs {fes:?}");

    // Steady traffic for 14 s; one FE dies at t = 6 s.
    let wl = CpsWorkload::tcp_crr(
        VNIC,
        VpcId(1),
        SERVICE,
        9000,
        (24..32).map(ServerId).collect(),
        30_000.0,
        SimDuration::from_secs(14),
    );
    let start = cluster.now();
    let mut rng = nezha::sim::rng::SimRng::new(99);
    for s in wl.generate(start, &mut rng) {
        cluster.add_conn(s).unwrap();
    }
    let victim = fes[0];
    let crash_at = start + SimDuration::from_secs(6);
    cluster.crash_at(victim, crash_at);
    println!(
        "scheduling crash of FE {victim} at t={:.1}s",
        crash_at.as_secs_f64()
    );

    // Sample the pool every second; report the packets lost during each
    // second (the Fig. 14 loss surge).
    let mut last_lost = 0u64;
    for step in 1..=16 {
        let t = start + SimDuration::from_secs(step);
        cluster.run_until(t);
        let fes = cluster.fe_servers(VNIC);
        let lost_total = cluster.stats().pkts.dropped;
        let lost = lost_total - last_lost;
        last_lost = lost_total;
        println!(
            "t={:>4.1}s  FEs={:?}  lost this second: {}{}",
            t.as_secs_f64(),
            fes,
            lost,
            if cluster.stats().failover_events > 0 && lost == 0 && step >= 8 {
                "  (failed over, recovered)"
            } else {
                ""
            },
        );
    }

    let total = cluster.stats().completed + cluster.stats().failed;
    println!();
    println!(
        "connections: {} completed, {} failed ({:.3}% of {total})",
        cluster.stats().completed,
        cluster.stats().failed,
        cluster.stats().failed as f64 / total as f64 * 100.0
    );
    println!(
        "failovers: {}; pool restored to {} FEs without the victim",
        cluster.stats().failover_events,
        cluster.fe_count(VNIC)
    );
    assert!(!cluster.fe_servers(VNIC).contains(&victim));
    assert_eq!(cluster.fe_count(VNIC), 4, "pool floor is 4 FEs");
}

//! Elephant-flow isolation (§7.5): pin a bandwidth monster to a dedicated
//! FE so the mice sharing its hash bucket stop suffering.
//!
//! An elephant hashed onto FE X competes with every mouse flow whose hash
//! lands there. Nezha's mitigation assigns the elephant its own FE; the
//! mice immediately see clean latency again. This example measures mouse
//! probe latency before and after pinning.
//!
//! Run with: `cargo run --release --example elephant_isolation`

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, SessionKey, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};
use nezha::workloads::elephant::ElephantFlow;

const VNIC: VnicId = VnicId(1);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);

fn mouse_latency(cluster: &mut Cluster, tag: u16) -> f64 {
    // Mice: short probes from many clients (distinct flows).
    let before = cluster.stats().probe_latency.len();
    let t0 = cluster.now();
    for i in 0..40u16 {
        let tuple = FiveTuple::tcp(
            Ipv4Addr::new(10, 7, 9, (i % 200) as u8 + 1),
            20_000 + tag * 100 + i,
            SERVICE,
            9000,
        );
        cluster
            .inject_probe_rx(
                VNIC,
                tuple,
                64,
                ServerId(24 + (i % 8) as u32),
                t0 + SimDuration::from_millis(i as u64),
            )
            .unwrap();
    }
    cluster.run_until(t0 + SimDuration::from_millis(600));
    let stats = cluster.stats();
    let lats = &stats.probe_latency.raw()[before..];
    lats.iter().sum::<f64>() / lats.len() as f64
}

fn main() {
    // Small FEs so the elephant actually hurts.
    let cfg = ClusterConfig::builder().cores(1).auto(false).build();
    let mut cluster = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), ServerId(0));
    vnic.allow_inbound_port(9000);
    cluster
        .add_vnic(vnic, ServerId(0), VmConfig::default())
        .unwrap();
    cluster.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    cluster.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    println!("pool: {:?}", cluster.fe_servers(VNIC));

    // Quiet baseline.
    let quiet = mouse_latency(&mut cluster, 0);
    println!("mouse latency, quiet pool:          {:7.1} us", quiet * 1e6);

    // The elephant: a 12 Gbps bulk stream — 1.3x one FE's packet-rate
    // capacity, so its FE runs a standing queue.
    let elephant = ElephantFlow::bulk(
        VNIC,
        VpcId(1),
        SERVICE,
        9000,
        ServerId(30),
        12.0,
        SimDuration::from_millis(400),
    );
    let run_elephant = |cluster: &mut Cluster| {
        let t0 = cluster.now();
        for at in elephant.schedule(t0) {
            cluster
                .inject_bulk_rx(
                    VNIC,
                    elephant.tuple,
                    elephant.packet_bytes,
                    ServerId(30),
                    at,
                )
                .unwrap();
        }
    };

    // Elephant sharing the mice's hash space: measure mid-storm.
    run_elephant(&mut cluster);
    let t = cluster.now();
    cluster.run_until(t + SimDuration::from_millis(50));
    let noisy = mouse_latency(&mut cluster, 1);
    println!("mouse latency, elephant unpinned:   {:7.1} us", noisy * 1e6);
    // Let the storm and its backlog drain.
    let t = cluster.now();
    cluster.run_until(t + SimDuration::from_secs(1));

    // Pin the elephant to a dedicated FE (§7.5) and repeat.
    let key = SessionKey::of(VpcId(1), elephant.tuple);
    let hash = elephant.tuple.canonical().stable_hash();
    let fes = cluster.fe_servers(VNIC);
    let natural = cluster
        .backend(VNIC)
        .unwrap()
        .select_fe(&key, hash)
        .unwrap();
    let dedicated = *fes.iter().find(|s| **s != natural).unwrap();
    cluster.pin_flow(VNIC, key, dedicated).unwrap();
    println!(
        "pinned elephant {} -> dedicated FE {dedicated}",
        elephant.tuple
    );
    // Give every sender time to learn the narrowed general ring.
    let t = cluster.now();
    cluster.run_until(t + SimDuration::from_millis(400));

    run_elephant(&mut cluster);
    let t = cluster.now();
    cluster.run_until(t + SimDuration::from_millis(50));
    let isolated = mouse_latency(&mut cluster, 2);
    println!(
        "mouse latency, elephant pinned:     {:7.1} us",
        isolated * 1e6
    );
    println!();
    println!(
        "isolation recovered {:.0}% of the elephant's added latency",
        100.0 * (noisy - isolated) / (noisy - quiet).max(1e-12)
    );
}

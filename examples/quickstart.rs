//! Quickstart: offload one overloaded vNIC and watch its CPS multiply.
//!
//! Builds a small simulated datacenter, drives a TCP_CRR workload at a
//! busy vNIC twice — once with the traditional local vSwitch, once with
//! Nezha offloading to four idle SmartNICs — and prints the goodput,
//! loss, and BE/FE utilization side by side.
//!
//! Run with: `cargo run --release --example quickstart`

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};
use nezha::workloads::cps::CpsWorkload;

const VNIC: VnicId = VnicId(1);
const HOME: ServerId = ServerId(0);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);
const PORT: u16 = 9000;

fn build(offload: bool) -> Cluster {
    // A small SmartNIC keeps the demo fast.
    let cfg = ClusterConfig::builder()
        .cores(1)
        .auto_offload(false)
        .build();
    let mut cluster = Cluster::new(cfg);

    // One tenant vNIC with a security group that exposes port 9000.
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), HOME);
    vnic.allow_inbound_port(PORT);
    cluster
        .add_vnic(
            vnic,
            HOME,
            VmConfig {
                per_core_cps: 13_425.0,
                ..VmConfig::default()
            },
        )
        .unwrap();

    if offload {
        cluster
            .trigger_offload(VNIC, SimTime::ZERO)
            .expect("offload failed");
        cluster.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        println!(
            "offloaded vNIC {VNIC} to FEs {:?} in {:.0} ms",
            cluster.fe_servers(VNIC),
            cluster.stats().offload_completion.mean() * 1e3
        );
    }
    cluster
}

fn drive(cluster: &mut Cluster, rate: f64) -> (f64, f64) {
    let duration = SimDuration::from_secs(3);
    let start = cluster.now();
    let wl = CpsWorkload::tcp_crr(
        VNIC,
        VpcId(1),
        SERVICE,
        PORT,
        (24..32).map(ServerId).collect(),
        rate,
        duration,
    );
    let mut rng = nezha::sim::rng::SimRng::new(7);
    for spec in wl.generate(start, &mut rng) {
        cluster.add_conn(spec).unwrap();
    }
    cluster.run_until(start + duration + SimDuration::from_secs(1));
    let total = cluster.stats().completed + cluster.stats().failed + cluster.stats().denied;
    (
        cluster.stats().completed as f64 / duration.as_secs_f64(),
        1.0 - cluster.stats().completed as f64 / total.max(1) as f64,
    )
}

fn main() {
    // Offer ~3x the local vSwitch's capability — sustained, so the
    // traditional switch cannot hide behind retransmissions.
    let rate = 180_000.0;
    println!("offering {rate:.0} new connections/s to one vNIC\n");

    // The local switch's nominal capability, for reference.
    let probe = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), HOME);
    let capability = {
        let cfg = ClusterConfig::default().vswitch;
        let mut c = cfg;
        c.cores = 1;
        c.capacity_hz() / probe.crr_cycles(&c.costs, 64) as f64
    };

    let mut local = build(false);
    let (cps, fail) = drive(&mut local, rate);
    println!("traditional local vSwitch (capability ~{capability:.0} CPS):");
    println!(
        "  collapses under sustained 3x overload: goodput {cps:.0} CPS, {:.1}% of connections fail",
        fail * 100.0
    );
    println!();

    let mut nezha = build(true);
    let (cps_n, fail_n) = drive(&mut nezha, rate);
    println!("with Nezha (4 FEs initially):");
    println!(
        "  goodput {cps_n:.0} CPS, {:.1}% connections failed",
        fail_n * 100.0
    );
    println!(
        "  pool grew to {} FEs under load (auto-scaling)",
        nezha.fe_count(VNIC)
    );
    println!(
        "\nNezha sustains {:.1}x the local switch's capability (paper Fig. 9: ~3.3x,\nthen VM-kernel-limited)",
        cps_n / capability
    );
}

//! VM live migration, two ways (paper §7.2 / Fig. A1).
//!
//! Traditional migration copies the VM's memory and reconfigures the
//! vNIC on the target vSwitch — seconds to minutes, growing with VM
//! size. Under Nezha the vNIC is already offloaded, so redirecting
//! traffic is a single BE-location update on the FEs: sub-millisecond,
//! independent of VM size. This example runs the redirect live in the
//! cluster and compares against the migration cost model.
//!
//! Run with: `cargo run --release --example live_migration`

use nezha::core::cluster::{Cluster, ClusterConfig, ConfigOp, Event};
use nezha::core::migration::MigrationModel;
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};

fn main() {
    // The cost model side (Fig. A1).
    println!("traditional live migration (model):");
    let m = MigrationModel::default();
    for (vcpus, mem_gb) in [(8u32, 16.0), (64, 256.0), (128, 1024.0)] {
        let c = m.migrate(mem_gb, vcpus, 64 << 20);
        println!(
            "  {vcpus:>3} vCPU / {mem_gb:>5.0} GB: completion {:>7.1}s, downtime {:>5.2}s",
            c.completion.as_secs_f64(),
            c.downtime.as_secs_f64()
        );
    }
    let r = m.nezha_redirect();
    println!(
        "  Nezha redirect:            completion {:>7.4}s — independent of VM size\n",
        r.completion.as_secs_f64()
    );

    // The live side: redirect an offloaded vNIC's BE in the simulator.
    let mut cluster = Cluster::new(ClusterConfig::default());
    let vnic = VnicId(1);
    let mut v = Vnic::new(
        vnic,
        VpcId(1),
        Ipv4Addr::new(10, 7, 0, 1),
        VnicProfile::default(),
        ServerId(0),
    );
    v.allow_inbound_port(9000);
    cluster
        .add_vnic(v, ServerId(0), VmConfig::default())
        .unwrap();
    cluster.trigger_offload(vnic, SimTime::ZERO).unwrap();
    cluster.run_until(SimTime::ZERO + SimDuration::from_secs(3));

    let old_home = ServerId(0);
    let new_home = ServerId(20);
    println!("live redirect in the cluster: BE {old_home} -> {new_home}");
    let t0 = cluster.now();
    cluster.engine.schedule_in(
        SimDuration::from_micros(800), // one config push to the FEs
        Event::Config(ConfigOp::BeLocationUpdate { vnic, new_home }),
    );
    cluster.run_until(t0 + SimDuration::from_millis(2));

    for fe in cluster.fe_servers(vnic) {
        let loc = cluster.fe_be_location(fe, vnic).unwrap();
        println!("  FE {fe}: BE location now {loc}");
        assert_eq!(loc, new_home);
    }
    assert_eq!(cluster.home_of(vnic), Some(new_home));
    println!(
        "redirect applied after a 0.8 ms config push (paper: <1 ms, vs tens\nof minutes for migrating a 1 TB VM)"
    );
}

//! Middlebox scenario: an LB real-server vNIC with stateful
//! decapsulation, offloaded under Nezha (the paper's §5.2 case study and
//! the Table 3 production setting).
//!
//! Shows the full §5.2 workflow end to end: the RX packet arrives via
//! the LB with an overlay source, the FE piggybacks it to the BE, the BE
//! records it as state, and the TX response is re-encapsulated toward
//! the LB — all verified on the live session table. Then prints the
//! analytic Table 3 gains for the three middlebox classes.
//!
//! Run with: `cargo run --release --example middlebox_offload`

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::conn::{ConnKind, ConnSpec};
use nezha::core::region::middlebox;
use nezha::core::vm::VmConfig;
use nezha::sim::time::SimDuration;
use nezha::types::{FiveTuple, Ipv4Addr, ServerId, SessionKey, VnicId, VpcId};
use nezha::vswitch::config::VSwitchConfig;
use nezha::vswitch::vnic::{Vnic, VnicProfile};

fn main() {
    let cfg = ClusterConfig::builder().auto_offload(false).build();
    let mut cluster = Cluster::new(cfg);

    // A real server behind a load balancer: stateful decap applies.
    let rs = VnicId(7);
    let rs_addr = Ipv4Addr::new(10, 9, 0, 1);
    let lb_vip = Ipv4Addr::new(100, 64, 0, 5);
    let profile = VnicProfile {
        stateful_decap: true,
        ..VnicProfile::default()
    };
    let mut vnic = Vnic::new(rs, VpcId(3), rs_addr, profile, ServerId(0));
    vnic.allow_inbound_port(8080);
    cluster
        .add_vnic(vnic, ServerId(0), VmConfig::with_vcpus(32))
        .unwrap();

    // Offload it, then run one client connection through the LB.
    cluster.trigger_offload(rs, cluster.now()).unwrap();
    let t = cluster.now();
    cluster.run_until(t + SimDuration::from_secs(3));
    println!("real-server vNIC offloaded to {:?}", cluster.fe_servers(rs));

    let spec = ConnSpec {
        vnic: rs,
        vpc: VpcId(3),
        tuple: FiveTuple::tcp(Ipv4Addr::new(203, 0, 113, 9), 50_000, rs_addr, 8080),
        peer_server: ServerId(40),
        kind: ConnKind::PersistentInbound,
        start: cluster.now(),
        payload: 512,
        overlay_encap_src: Some(lb_vip), // the LB's address on the overlay
    };
    cluster.add_conn(spec).unwrap();
    let t = cluster.now();
    cluster.run_until(t + SimDuration::from_millis(400));

    assert_eq!(cluster.stats().completed, 1, "connection must complete");
    let key = SessionKey::of(VpcId(3), spec.tuple);
    let entry = cluster
        .switch(ServerId(0))
        .unwrap()
        .sessions
        .get(&key)
        .expect("session state lives at the BE");
    println!(
        "BE recorded stateful-decap address: {:?} (the LB VIP {lb_vip})",
        entry.state.decap.map(|d| d.overlay_src)
    );
    println!(
        "BE entry is state-only ({} B used of the 64 B slab); cached flows live at the FEs\n",
        entry.state.used_bytes()
    );

    // The production punchline: Table 3's gains for LB / NAT / TR.
    println!("analytic middlebox gains (paper Table 3):");
    let host = VSwitchConfig::middlebox_host();
    let vm = VmConfig {
        vcpus: 64,
        per_core_cps: 90_000.0,
        ..VmConfig::default()
    };
    for row in middlebox::gains(&host, &vm) {
        println!(
            "  {:<16} CPS {:.0}K -> {:.2}M ({:.2}x)   #flows {:.2}x   #vNICs >{:.0}x",
            row.name,
            row.cps_before / 1e3,
            row.cps_after / 1e6,
            row.cps_gain,
            row.flows_gain,
            row.vnic_gain.min(99.0)
        );
    }
}

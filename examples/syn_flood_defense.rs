//! SYN-flood defence: the short aging time for embryonic sessions keeps
//! BE state memory bounded under attack (paper §7.3).
//!
//! A flood of unanswered SYNs creates state-only session entries at the
//! BE. Without special handling they would sit there for the full 8 s
//! established-session timeout; with the 1 s SYN aging they are reclaimed
//! quickly, so the table stays near the flood's 1-second footprint while
//! legitimate established sessions are untouched.
//!
//! Run with: `cargo run --release --example syn_flood_defense`

use nezha::core::cluster::{Cluster, ClusterConfig};
use nezha::core::vm::VmConfig;
use nezha::sim::time::{SimDuration, SimTime};
use nezha::types::{Ipv4Addr, ServerId, VnicId, VpcId};
use nezha::vswitch::vnic::{Vnic, VnicProfile};
use nezha::workloads::flows::PersistentFlows;
use nezha::workloads::syn_flood::SynFlood;

const VNIC: VnicId = VnicId(1);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);

fn main() {
    let cfg = ClusterConfig::builder().auto_offload(false).build();
    let mut cluster = Cluster::new(cfg);
    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), ServerId(0));
    vnic.allow_inbound_port(9000);
    cluster
        .add_vnic(vnic, ServerId(0), VmConfig::default())
        .unwrap();
    cluster.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    cluster.run_until(SimTime::ZERO + SimDuration::from_secs(3));

    // 1000 legitimate persistent connections first.
    let legit = PersistentFlows {
        vnic: VNIC,
        vpc: VpcId(1),
        service_addr: SERVICE,
        service_port: 9000,
        client_servers: (24..32).map(ServerId).collect(),
        count: 1_000,
        open_interval: SimDuration::from_micros(200),
    };
    let t = cluster.now();
    for s in legit.generate(t) {
        cluster.add_conn(s).unwrap();
    }
    cluster.run_until(t + SimDuration::from_secs(1));
    let legit_sessions = cluster.switch(ServerId(0)).unwrap().sessions.len();
    println!("established {legit_sessions} legitimate sessions at the BE");

    // Now a 50K-SYN/s flood for 5 seconds.
    let flood = SynFlood {
        vnic: VNIC,
        vpc: VpcId(1),
        service_addr: SERVICE,
        service_port: 9000,
        attacker_server: ServerId(40),
        rate: 50_000.0,
        duration: SimDuration::from_secs(5),
    };
    let t = cluster.now();
    for s in flood.generate(t) {
        cluster.add_conn(s).unwrap();
    }
    println!("flooding 50K SYN/s for 5s (250K embryonic sessions offered)\n");
    let mut peak = 0usize;
    for step in 1..=8 {
        let at = t + SimDuration::from_secs(step);
        cluster.run_until(at);
        let live = cluster.switch(ServerId(0)).unwrap().sessions.len();
        peak = peak.max(live);
        println!(
            "t=+{step}s: {live:>7} live sessions ({:.1} MB of state slabs)",
            live as f64 * 64.0 / 1e6
        );
    }

    let (created, expired, _) = cluster.switch(ServerId(0)).unwrap().sessions.counters();
    println!();
    println!("peak table size {peak} ≈ one second of flood + legit sessions — the",);
    println!("1s SYN aging reclaimed {expired} embryonic entries (of {created} created);");
    println!("without it the flood would have pinned ~250K entries for 8s each.");
    assert!(peak < 80_000, "SYN aging failed to bound the table");
    // After the flood drains, the legitimate sessions are still there
    // (persistent conns idle out only after the 8s established timeout).
    let live = cluster.switch(ServerId(0)).unwrap().sessions.len();
    println!("live sessions after the flood: {live}");
}

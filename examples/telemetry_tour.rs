//! A tour of the telemetry subsystem through the `nezha::prelude`:
//! build a cluster with the config builder, drive traffic, offload the
//! vNIC, and read everything back through metrics snapshots and the
//! packet trace — including the typed errors the control plane returns
//! for invalid operations.
//!
//! Run with `cargo run --example telemetry_tour`.

use nezha::prelude::*;

const VNIC: VnicId = VnicId(1);
const HOME: ServerId = ServerId(0);
const SERVICE: Ipv4Addr = Ipv4Addr::new(10, 7, 0, 1);
const PORT: u16 = 9000;

fn main() {
    // One fluent chain replaces the old default-then-reassign dance.
    let cfg = ClusterConfig::builder()
        .cores(2)
        .auto(false)
        .seed(7)
        .build();
    let mut cluster = Cluster::new(cfg);

    // Keep the last 4096 packet-level events for inspection.
    cluster.enable_trace(4096);

    let mut vnic = Vnic::new(VNIC, VpcId(1), SERVICE, VnicProfile::default(), HOME);
    vnic.allow_inbound_port(PORT);
    cluster
        .add_vnic(vnic, HOME, VmConfig::with_vcpus(64))
        .expect("fresh cluster fits one vNIC");

    // Control-plane misuse is reported as typed errors, not panics.
    match cluster.trigger_offload(VnicId(99), SimTime::ZERO) {
        Err(NezhaError::UnknownVnic(v)) => println!("refused as expected: unknown vNIC {}", v.0),
        other => panic!("expected UnknownVnic, got {other:?}"),
    }

    // Offload the real vNIC and let the configuration propagate.
    cluster.trigger_offload(VNIC, SimTime::ZERO).unwrap();
    cluster.run_until(SimTime::ZERO + SimDuration::from_secs(3));
    println!("offloaded to {} FEs", cluster.fe_count(VNIC));

    // Drive 200 inbound connections through the FE set.
    let t0 = cluster.now();
    for i in 0..200u32 {
        cluster
            .add_conn(ConnSpec {
                vnic: VNIC,
                vpc: VpcId(1),
                tuple: FiveTuple::tcp(
                    Ipv4Addr::new(10, 7, 2, (i % 200) as u8 + 1),
                    (10_000 + i) as u16,
                    SERVICE,
                    PORT,
                ),
                peer_server: ServerId(8 + (i % 8)),
                kind: ConnKind::Inbound,
                start: t0 + SimDuration::from_micros(500 * i as u64),
                payload: 128,
                overlay_encap_src: None,
            })
            .unwrap();
    }
    cluster.run_until(cluster.now() + SimDuration::from_secs(5));

    // --- Metrics: one deterministic snapshot of every registered series.
    let snap = cluster.metrics().snapshot();
    println!();
    println!("completed conns : {}", snap.counter("conn.completed"));
    println!("packets ok      : {}", snap.counter("pkt.ok"));
    println!("packets dropped : {}", snap.counter("pkt.dropped"));
    println!("offload events  : {}", snap.counter("ctrl.offload_events"));
    let mut lat = snap.histogram("latency.conn");
    if !lat.is_empty() {
        println!(
            "conn latency    : p50 {:.1} us, p99 {:.1} us",
            lat.percentile(50.0) * 1e6,
            lat.percentile(99.0) * 1e6,
        );
    }

    // --- Trace: the bounded ring of packet-level events.
    let trace = cluster.trace();
    println!();
    println!(
        "trace ring      : {} events held ({} recorded, {} evicted)",
        trace.len(),
        trace.recorded(),
        trace.evicted()
    );
    let on_home = trace.query(TraceFilter::all().on_server(HOME));
    println!("events at BE    : {}", on_home.len());
    if let Some(ev) = on_home.first() {
        println!(
            "first BE event  : {:?} pkt={} kind={:?}",
            ev.at, ev.trace_id, ev.kind
        );
    }
}
